package guest

import "math/bits"

// This file defines the g86 flag semantics in one place. Both the
// interpreter and the VLIW host's flag-computing atoms call these helpers,
// so the two execution engines agree bit-for-bit by construction — the
// property the paper's recovery model depends on (after a rollback, the
// interpreter must reproduce exactly the state the translation would have
// committed).
//
// Where x86 leaves a flag undefined (shifts by more than 1, multiplies),
// g86 gives it the deterministic value documented on each function.

func parity(res uint32) uint32 {
	if bits.OnesCount8(uint8(res))%2 == 0 {
		return FlagPF
	}
	return 0
}

func szp(res uint32) uint32 {
	f := parity(res)
	if res == 0 {
		f |= FlagZF
	}
	if int32(res) < 0 {
		f |= FlagSF
	}
	return f
}

// mergeArith replaces the arithmetic flags of old with new, preserving IF
// and the always-set bit.
func mergeArith(old, new uint32) uint32 {
	return old&^ArithFlags | new&ArithFlags | FlagsAlways
}

// FlagsLogic returns the flags of a logical result: CF=OF=0, SZP from res.
func FlagsLogic(old, res uint32) uint32 {
	return mergeArith(old, szp(res))
}

// FlagsAdd computes a+b and the resulting flags.
func FlagsAdd(old, a, b uint32) (uint32, uint32) {
	res := a + b
	f := szp(res)
	if res < a {
		f |= FlagCF
	}
	// Signed overflow: operands share a sign the result does not.
	if (a^b)&0x80000000 == 0 && (a^res)&0x80000000 != 0 {
		f |= FlagOF
	}
	return res, mergeArith(old, f)
}

// FlagsSub computes a-b and the resulting flags (CF = borrow).
func FlagsSub(old, a, b uint32) (uint32, uint32) {
	res := a - b
	f := szp(res)
	if a < b {
		f |= FlagCF
	}
	if (a^b)&0x80000000 != 0 && (a^res)&0x80000000 != 0 {
		f |= FlagOF
	}
	return res, mergeArith(old, f)
}

// FlagsAdc computes a+b+CF(old) with full carry/overflow semantics, as x86
// ADC does.
func FlagsAdc(old, a, b uint32) (uint32, uint32) {
	cin := old & FlagCF
	wide := uint64(a) + uint64(b) + uint64(cin)
	res := uint32(wide)
	f := szp(res)
	if wide > 0xFFFFFFFF {
		f |= FlagCF
	}
	if (a^b)&0x80000000 == 0 && (a^res)&0x80000000 != 0 {
		f |= FlagOF
	}
	return res, mergeArith(old, f)
}

// FlagsSbb computes a-b-CF(old), as x86 SBB does.
func FlagsSbb(old, a, b uint32) (uint32, uint32) {
	cin := uint64(old & FlagCF)
	res := uint32(uint64(a) - uint64(b) - cin)
	f := szp(res)
	if uint64(a) < uint64(b)+cin {
		f |= FlagCF
	}
	if (a^b)&0x80000000 != 0 && (a^res)&0x80000000 != 0 {
		f |= FlagOF
	}
	return res, mergeArith(old, f)
}

// FlagsInc computes a+1 preserving CF, as x86 INC does.
func FlagsInc(old, a uint32) (uint32, uint32) {
	res, f := FlagsAdd(old, a, 1)
	return res, f&^FlagCF | old&FlagCF
}

// FlagsDec computes a-1 preserving CF, as x86 DEC does.
func FlagsDec(old, a uint32) (uint32, uint32) {
	res, f := FlagsSub(old, a, 1)
	return res, f&^FlagCF | old&FlagCF
}

// FlagsNeg computes 0-a; CF is set iff a is nonzero.
func FlagsNeg(old, a uint32) (uint32, uint32) {
	return FlagsSub(old, 0, a)
}

// FlagsShl computes a<<n (n taken mod 32). n==0 leaves flags untouched.
// CF is the last bit shifted out. OF (defined for every n in g86, unlike
// x86 which defines it only for n==1) is MSB(result) XOR CF.
func FlagsShl(old, a, n uint32) (uint32, uint32) {
	n &= 31
	if n == 0 {
		return a, old
	}
	res := a << n
	f := szp(res)
	if a&(1<<(32-n)) != 0 {
		f |= FlagCF
	}
	if (res>>31)&1 != (f>>0)&1 { // MSB(result) != CF
		f |= FlagOF
	}
	return res, mergeArith(old, f)
}

// FlagsShr computes a>>n logically (n taken mod 32). n==0 leaves flags
// untouched. CF is the last bit shifted out; OF is MSB of the original
// operand (matching x86's n==1 definition, applied to every n).
func FlagsShr(old, a, n uint32) (uint32, uint32) {
	n &= 31
	if n == 0 {
		return a, old
	}
	res := a >> n
	f := szp(res)
	if a&(1<<(n-1)) != 0 {
		f |= FlagCF
	}
	if a&0x80000000 != 0 {
		f |= FlagOF
	}
	return res, mergeArith(old, f)
}

// FlagsSar computes a>>n arithmetically (n taken mod 32). n==0 leaves flags
// untouched. CF is the last bit shifted out; OF is always 0, as for x86
// SAR by 1.
func FlagsSar(old, a, n uint32) (uint32, uint32) {
	n &= 31
	if n == 0 {
		return a, old
	}
	res := uint32(int32(a) >> n)
	f := szp(res)
	if a&(1<<(n-1)) != 0 {
		f |= FlagCF
	}
	return res, mergeArith(old, f)
}

// FlagsImul computes the signed 32x32 product. CF and OF are set when the
// product does not fit in 32 bits; SZP come from the low 32 bits (defined
// in g86, undefined in x86).
func FlagsImul(old, a, b uint32) (uint32, uint32) {
	full := int64(int32(a)) * int64(int32(b))
	res := uint32(full)
	f := szp(res)
	if full != int64(int32(res)) {
		f |= FlagCF | FlagOF
	}
	return res, mergeArith(old, f)
}

// FlagsMul computes the unsigned 32x32 -> 64 product, returning low and high
// halves. CF and OF are set when the high half is nonzero; SZP come from the
// low half.
func FlagsMul(old, a, b uint32) (lo, hi, flags uint32) {
	hi, lo = bits.Mul32(a, b)
	f := szp(lo)
	if hi != 0 {
		f |= FlagCF | FlagOF
	}
	return lo, hi, mergeArith(old, f)
}

// DivU performs the unsigned 64/32 divide of DIV: (hi:lo)/d. ok is false on
// divide-by-zero or quotient overflow (the #DE conditions). Flags are
// unchanged by DIV.
func DivU(hi, lo, d uint32) (q, r uint32, ok bool) {
	if d == 0 || hi >= d {
		return 0, 0, false
	}
	q, r = bits.Div32(hi, lo, d)
	return q, r, true
}

// DivS performs the signed 64/32 divide of IDIV. ok is false on
// divide-by-zero or quotient overflow.
func DivS(hi, lo, d uint32) (q, r uint32, ok bool) {
	if d == 0 {
		return 0, 0, false
	}
	n := int64(hi)<<32 | int64(lo)
	dd := int64(int32(d))
	quo := n / dd
	rem := n % dd
	if quo != int64(int32(quo)) {
		return 0, 0, false
	}
	return uint32(quo), uint32(rem), true
}
