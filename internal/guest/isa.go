// Package guest defines g86, the guest instruction-set architecture emulated
// by this reproduction of the Transmeta Code Morphing Software.
//
// g86 is a 32-bit, x86-inspired CISC ISA. It deliberately keeps the
// properties that make full-system x86 emulation hard — and that the CGO 2003
// paper is about:
//
//   - every ALU instruction computes condition flags (so dead-flag
//     elimination and flag-precise exits matter),
//   - variable-length instructions living on ordinary writable pages
//     (so self-modifying code and mixed code-and-data pages arise),
//   - precise faults (#DE, #UD, #PF, #GP) and asynchronous interrupts
//     delivered at instruction boundaries,
//   - port I/O (IN/OUT) and memory-mapped I/O that is indistinguishable
//     from a plain load or store at translation time.
//
// The package defines the architectural register file, the EFLAGS bits, the
// binary encoding, and a decoder. Encoding helpers used by the assembler
// live in encode.go; the decoder in decode.go.
package guest

import "fmt"

// Reg names an architectural general-purpose register.
type Reg uint8

// The eight g86 general-purpose registers. The numbering mirrors x86 so that
// ESP/EBP keep their conventional stack roles.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI

	// NumRegs is the number of architectural general-purpose registers.
	NumRegs = 8
)

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// String returns the conventional lower-case register mnemonic.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// RegByName maps a mnemonic such as "eax" to its Reg. The boolean reports
// whether the name was recognized.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// EFLAGS bits. Bit positions follow x86 so traces read familiarly.
const (
	FlagCF uint32 = 1 << 0  // carry
	FlagPF uint32 = 1 << 2  // parity (of low result byte)
	FlagZF uint32 = 1 << 6  // zero
	FlagSF uint32 = 1 << 7  // sign
	FlagIF uint32 = 1 << 9  // interrupt enable
	FlagOF uint32 = 1 << 11 // signed overflow

	// FlagsAlways is OR-ed into every EFLAGS value, mirroring x86's
	// always-set bit 1. It gives flag images a recognizable shape in dumps.
	FlagsAlways uint32 = 1 << 1

	// ArithFlags are the flags written by ordinary ALU instructions.
	ArithFlags = FlagCF | FlagPF | FlagZF | FlagSF | FlagOF
)

// Vector numbers for architectural exceptions, mirroring x86 where a
// counterpart exists.
const (
	VecDE = 0  // divide error
	VecUD = 6  // invalid opcode
	VecNP = 11 // segment/page not present (fetch from unmapped page)
	VecGP = 13 // general protection
	VecPF = 14 // page fault (data access violation)

	// VecIRQBase is the vector of external interrupt line 0; line n maps to
	// vector VecIRQBase+n.
	VecIRQBase = 32

	// NumVectors is the size of the interrupt vector table.
	NumVectors = 256
)

// IVTBase is the physical address of the interrupt vector table: NumVectors
// 32-bit little-endian handler addresses. A zero entry means "no handler";
// delivering through a zero entry halts the machine with an error.
const IVTBase = 0x0000_0100

// Cond is a condition code for Jcc instructions. The numbering mirrors the
// x86 condition nibble.
type Cond uint8

// Condition codes, in x86 nibble order.
const (
	CondO  Cond = 0x0 // overflow
	CondNO Cond = 0x1
	CondB  Cond = 0x2 // below (CF)
	CondAE Cond = 0x3
	CondE  Cond = 0x4 // equal (ZF)
	CondNE Cond = 0x5
	CondBE Cond = 0x6 // below or equal (CF|ZF)
	CondA  Cond = 0x7
	CondS  Cond = 0x8 // sign
	CondNS Cond = 0x9
	CondP  Cond = 0xA // parity
	CondNP Cond = 0xB
	CondL  Cond = 0xC // less (SF!=OF)
	CondGE Cond = 0xD
	CondLE Cond = 0xE // less or equal (ZF or SF!=OF)
	CondG  Cond = 0xF
)

var condNames = [16]string{"o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns", "p", "np", "l", "ge", "le", "g"}

// String returns the condition mnemonic suffix ("e", "ne", ...).
func (c Cond) String() string { return condNames[c&0xF] }

// CondByName maps a suffix such as "ne" to its Cond.
func CondByName(name string) (Cond, bool) {
	for i, n := range condNames {
		if n == name {
			return Cond(i), true
		}
	}
	// Accept common x86 aliases.
	switch name {
	case "z":
		return CondE, true
	case "nz":
		return CondNE, true
	case "c":
		return CondB, true
	case "nc":
		return CondAE, true
	}
	return 0, false
}

// Eval reports whether the condition holds under the given EFLAGS image.
func (c Cond) Eval(flags uint32) bool {
	cf := flags&FlagCF != 0
	zf := flags&FlagZF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	pf := flags&FlagPF != 0
	var v bool
	switch c &^ 1 {
	case CondO:
		v = of
	case CondB:
		v = cf
	case CondE:
		v = zf
	case CondBE:
		v = cf || zf
	case CondS:
		v = sf
	case CondP:
		v = pf
	case CondL:
		v = sf != of
	case CondLE:
		v = zf || sf != of
	}
	if c&1 != 0 {
		v = !v
	}
	return v
}

// Op is a g86 opcode byte.
type Op uint8

// Opcode assignments. Each opcode implies a fixed operand layout (see the
// Fmt* constants and the decoder); there are no prefixes.
const (
	OpNOP Op = 0x00
	OpHLT Op = 0x01
	OpCLI Op = 0x02
	OpSTI Op = 0x03

	OpMOVrr  Op = 0x10 // mov r, r
	OpMOVri  Op = 0x11 // mov r, imm32
	OpMOVrm  Op = 0x12 // mov r, [mem]     (32-bit load)
	OpMOVmr  Op = 0x13 // mov [mem], r     (32-bit store)
	OpMOVmi  Op = 0x14 // mov [mem], imm32
	OpMOVBrm Op = 0x15 // movb r, [mem]    (zero-extending byte load)
	OpMOVBmr Op = 0x16 // movb [mem], r    (byte store of low 8 bits)
	OpLEA    Op = 0x17 // lea r, [mem]
	OpMOVSXB Op = 0x18 // movsx r, [mem]: sign-extending byte load

	OpADDrr  Op = 0x20
	OpADDri  Op = 0x21
	OpADDrm  Op = 0x22
	OpADDmr  Op = 0x23 // add [mem], r (read-modify-write)
	OpSUBrr  Op = 0x24
	OpSUBri  Op = 0x25
	OpSUBrm  Op = 0x26
	OpSUBmr  Op = 0x27
	OpANDrr  Op = 0x28
	OpANDri  Op = 0x29
	OpANDrm  Op = 0x2A
	OpANDmr  Op = 0x2B
	OpORrr   Op = 0x2C
	OpORri   Op = 0x2D
	OpORrm   Op = 0x2E
	OpORmr   Op = 0x2F
	OpXORrr  Op = 0x30
	OpXORri  Op = 0x31
	OpXORrm  Op = 0x32
	OpXORmr  Op = 0x33
	OpCMPrr  Op = 0x34
	OpCMPri  Op = 0x35
	OpCMPrm  Op = 0x36
	OpCMPmi  Op = 0x37 // cmp [mem], imm32
	OpTESTrr Op = 0x38
	OpTESTri Op = 0x39
	OpADCrr  Op = 0x3A // add with carry
	OpADCri  Op = 0x3B
	OpSBBrr  Op = 0x3C // subtract with borrow
	OpSBBri  Op = 0x3D
	OpXCHG   Op = 0x3E // xchg r, r (flags unaffected)
	OpCDQ    Op = 0x3F // sign-extend EAX into EDX (flags unaffected)

	OpINC Op = 0x40 // inc r (CF preserved)
	OpDEC Op = 0x41 // dec r (CF preserved)
	OpNEG Op = 0x42
	OpNOT Op = 0x43 // flags unaffected

	OpSHLri Op = 0x44 // shl r, imm8
	OpSHRri Op = 0x45
	OpSARri Op = 0x46
	OpSHLrc Op = 0x47 // shl r, cl
	OpSHRrc Op = 0x48
	OpSARrc Op = 0x49

	OpIMULrr Op = 0x4A // imul r, r (low 32 bits; OF/CF on overflow)
	OpIMULri Op = 0x4B // imul r, imm32
	OpMUL    Op = 0x4C // mul r: EDX:EAX = EAX * r (unsigned)
	OpDIV    Op = 0x4D // div r: EAX = EDX:EAX / r, EDX = remainder; #DE on 0 or overflow
	OpIDIV   Op = 0x4E // idiv r: signed form of DIV

	OpPUSHr Op = 0x50
	OpPUSHi Op = 0x51
	OpPOPr  Op = 0x52
	OpPUSHF Op = 0x53
	OpPOPF  Op = 0x54

	OpJMPrel  Op = 0x60 // jmp rel32 (relative to next instruction)
	OpJMPr    Op = 0x61 // jmp r
	OpJMPm    Op = 0x62 // jmp [mem]
	OpCALLrel Op = 0x63
	OpCALLr   Op = 0x64
	OpRET     Op = 0x65

	// 0x70..0x7F: Jcc rel32, condition in the low nibble.
	OpJccBase Op = 0x70

	OpIN   Op = 0x90 // in r, imm16     (32-bit port read)
	OpOUT  Op = 0x91 // out imm16, r    (32-bit port write)
	OpINT  Op = 0x92 // int imm8
	OpIRET Op = 0x93
)

// Fmt describes the operand layout of an opcode.
type Fmt uint8

// Operand layouts. The byte counts below exclude the opcode byte itself.
const (
	FmtNone  Fmt = iota // no operands
	FmtR                // 1 byte: register in low nibble
	FmtRR               // 1 byte: dst in high nibble, src in low nibble
	FmtRI               // 1 byte register + imm32
	FmtRI8              // 1 byte register + imm8
	FmtRM               // 1 byte register + mem operand
	FmtMR               // mem operand + 1 byte register
	FmtMI               // mem operand + imm32
	FmtM                // mem operand only
	FmtI32              // imm32 only
	FmtRel              // rel32 only
	FmtRPort            // 1 byte register + imm16 port
	FmtPortR            // imm16 port + 1 byte register
	FmtI8               // imm8 only
)

// opInfo records static properties of each opcode.
type opInfo struct {
	name  string
	fmt   Fmt
	valid bool
}

var opTable [256]opInfo

func def(op Op, name string, f Fmt) {
	opTable[op] = opInfo{name: name, fmt: f, valid: true}
}

func init() {
	def(OpNOP, "nop", FmtNone)
	def(OpHLT, "hlt", FmtNone)
	def(OpCLI, "cli", FmtNone)
	def(OpSTI, "sti", FmtNone)

	def(OpMOVrr, "mov", FmtRR)
	def(OpMOVri, "mov", FmtRI)
	def(OpMOVrm, "mov", FmtRM)
	def(OpMOVmr, "mov", FmtMR)
	def(OpMOVmi, "mov", FmtMI)
	def(OpMOVBrm, "movb", FmtRM)
	def(OpMOVBmr, "movb", FmtMR)
	def(OpLEA, "lea", FmtRM)
	def(OpMOVSXB, "movsx", FmtRM)

	for _, a := range []struct {
		base Op
		name string
	}{
		{OpADDrr, "add"}, {OpSUBrr, "sub"}, {OpANDrr, "and"},
		{OpORrr, "or"}, {OpXORrr, "xor"},
	} {
		def(a.base, a.name, FmtRR)
		def(a.base+1, a.name, FmtRI)
		def(a.base+2, a.name, FmtRM)
		def(a.base+3, a.name, FmtMR)
	}
	def(OpCMPrr, "cmp", FmtRR)
	def(OpCMPri, "cmp", FmtRI)
	def(OpCMPrm, "cmp", FmtRM)
	def(OpCMPmi, "cmp", FmtMI)
	def(OpTESTrr, "test", FmtRR)
	def(OpTESTri, "test", FmtRI)
	def(OpADCrr, "adc", FmtRR)
	def(OpADCri, "adc", FmtRI)
	def(OpSBBrr, "sbb", FmtRR)
	def(OpSBBri, "sbb", FmtRI)
	def(OpXCHG, "xchg", FmtRR)
	def(OpCDQ, "cdq", FmtNone)

	def(OpINC, "inc", FmtR)
	def(OpDEC, "dec", FmtR)
	def(OpNEG, "neg", FmtR)
	def(OpNOT, "not", FmtR)

	def(OpSHLri, "shl", FmtRI8)
	def(OpSHRri, "shr", FmtRI8)
	def(OpSARri, "sar", FmtRI8)
	def(OpSHLrc, "shl", FmtR)
	def(OpSHRrc, "shr", FmtR)
	def(OpSARrc, "sar", FmtR)

	def(OpIMULrr, "imul", FmtRR)
	def(OpIMULri, "imul", FmtRI)
	def(OpMUL, "mul", FmtR)
	def(OpDIV, "div", FmtR)
	def(OpIDIV, "idiv", FmtR)

	def(OpPUSHr, "push", FmtR)
	def(OpPUSHi, "push", FmtI32)
	def(OpPOPr, "pop", FmtR)
	def(OpPUSHF, "pushf", FmtNone)
	def(OpPOPF, "popf", FmtNone)

	def(OpJMPrel, "jmp", FmtRel)
	def(OpJMPr, "jmp", FmtR)
	def(OpJMPm, "jmp", FmtM)
	def(OpCALLrel, "call", FmtRel)
	def(OpCALLr, "call", FmtR)
	def(OpRET, "ret", FmtNone)

	for c := 0; c < 16; c++ {
		def(OpJccBase+Op(c), "j"+condNames[c], FmtRel)
	}

	def(OpIN, "in", FmtRPort)
	def(OpOUT, "out", FmtPortR)
	def(OpINT, "int", FmtI8)
	def(OpIRET, "iret", FmtNone)
}

// Valid reports whether op is an assigned g86 opcode.
func (op Op) Valid() bool { return opTable[op].valid }

// Name returns the opcode mnemonic, or "db 0x??" for unassigned bytes.
func (op Op) Name() string {
	if opTable[op].valid {
		return opTable[op].name
	}
	return fmt.Sprintf("db 0x%02x", uint8(op))
}

// Format returns the operand layout of op. Unassigned opcodes report FmtNone.
func (op Op) Format() Fmt { return opTable[op].fmt }

// IsJcc reports whether op is a conditional branch, returning its condition.
func (op Op) IsJcc() (Cond, bool) {
	if op >= OpJccBase && op < OpJccBase+16 {
		return Cond(op - OpJccBase), true
	}
	return 0, false
}

// MemOperand is a decoded [base + index*scale + disp] memory reference.
type MemOperand struct {
	HasBase  bool
	Base     Reg
	HasIndex bool
	Index    Reg
	ScaleLog uint8 // index is shifted left by ScaleLog (0..3)
	Disp     uint32
}

// String renders the operand in Intel-ish syntax, e.g. "[eax+ecx*4+0x10]".
func (m MemOperand) String() string {
	s := "["
	sep := ""
	if m.HasBase {
		s += m.Base.String()
		sep = "+"
	}
	if m.HasIndex {
		s += sep + m.Index.String()
		if m.ScaleLog > 0 {
			s += fmt.Sprintf("*%d", 1<<m.ScaleLog)
		}
		sep = "+"
	}
	if m.Disp != 0 || sep == "" {
		s += fmt.Sprintf("%s0x%x", sep, m.Disp)
	}
	return s + "]"
}

// EffectiveAddr computes the operand's address under the given register file.
func (m MemOperand) EffectiveAddr(regs *[NumRegs]uint32) uint32 {
	addr := m.Disp
	if m.HasBase {
		addr += regs[m.Base]
	}
	if m.HasIndex {
		addr += regs[m.Index] << m.ScaleLog
	}
	return addr
}

// Insn is one decoded g86 instruction.
type Insn struct {
	Addr uint32 // address of the opcode byte
	Len  uint32 // total encoded length in bytes
	Op   Op

	Dst Reg // destination register, if the format has one
	Src Reg // source register, if the format has one
	Mem MemOperand
	Imm uint32 // immediate / relative displacement / port, zero-extended

	// ImmOff is the byte offset of the 32-bit immediate field within the
	// encoded instruction, or 0 if the instruction has no imm32. The
	// stylized-SMC translator (§3.6.4 of the paper) uses this to convert
	// patched immediates into runtime loads from the code stream.
	ImmOff uint32
}

// Next returns the address of the following instruction.
func (i Insn) Next() uint32 { return i.Addr + i.Len }

// BranchTarget resolves a rel32 control transfer target. Only meaningful for
// FmtRel instructions.
func (i Insn) BranchTarget() uint32 { return i.Next() + i.Imm }

// HasImm32 reports whether the encoding carries a 32-bit immediate field
// (the field stylized SMC may patch).
func (i Insn) HasImm32() bool { return i.ImmOff != 0 }

// IsBlockEnd reports whether the instruction ends a basic block.
func (i Insn) IsBlockEnd() bool {
	switch i.Op {
	case OpJMPrel, OpJMPr, OpJMPm, OpCALLrel, OpCALLr, OpRET, OpHLT, OpINT, OpIRET:
		return true
	}
	_, jcc := i.Op.IsJcc()
	return jcc
}

// String disassembles the instruction.
func (i Insn) String() string {
	name := i.Op.Name()
	switch i.Op.Format() {
	case FmtNone:
		return name
	case FmtR:
		return fmt.Sprintf("%s %s", name, i.Dst)
	case FmtRR:
		return fmt.Sprintf("%s %s, %s", name, i.Dst, i.Src)
	case FmtRI:
		return fmt.Sprintf("%s %s, 0x%x", name, i.Dst, i.Imm)
	case FmtRI8:
		return fmt.Sprintf("%s %s, %d", name, i.Dst, i.Imm)
	case FmtRM:
		return fmt.Sprintf("%s %s, %s", name, i.Dst, i.Mem)
	case FmtMR:
		return fmt.Sprintf("%s %s, %s", name, i.Mem, i.Src)
	case FmtMI:
		return fmt.Sprintf("%s %s, 0x%x", name, i.Mem, i.Imm)
	case FmtM:
		return fmt.Sprintf("%s %s", name, i.Mem)
	case FmtI32:
		return fmt.Sprintf("%s 0x%x", name, i.Imm)
	case FmtI8:
		return fmt.Sprintf("%s %d", name, i.Imm)
	case FmtRel:
		return fmt.Sprintf("%s 0x%x", name, i.BranchTarget())
	case FmtRPort:
		return fmt.Sprintf("%s %s, 0x%x", name, i.Dst, i.Imm)
	case FmtPortR:
		return fmt.Sprintf("%s 0x%x, %s", name, i.Imm, i.Src)
	}
	return name
}
