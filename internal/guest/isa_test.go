package guest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		name string
	}{{EAX, "eax"}, {ECX, "ecx"}, {EDX, "edx"}, {EBX, "ebx"}, {ESP, "esp"}, {EBP, "ebp"}, {ESI, "esi"}, {EDI, "edi"}}
	for _, c := range cases {
		if c.r.String() != c.name {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, c.r.String(), c.name)
		}
		r, ok := RegByName(c.name)
		if !ok || r != c.r {
			t.Errorf("RegByName(%q) = %v, %v; want %v, true", c.name, r, ok, c.r)
		}
	}
	if _, ok := RegByName("r15"); ok {
		t.Error("RegByName accepted unknown register")
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		cond  Cond
		flags uint32
		want  bool
	}{
		{CondE, FlagZF, true},
		{CondE, 0, false},
		{CondNE, FlagZF, false},
		{CondNE, 0, true},
		{CondB, FlagCF, true},
		{CondAE, FlagCF, false},
		{CondBE, FlagZF, true},
		{CondBE, FlagCF, true},
		{CondBE, 0, false},
		{CondA, FlagCF | FlagZF, false},
		{CondA, 0, true},
		{CondS, FlagSF, true},
		{CondNS, FlagSF, false},
		{CondO, FlagOF, true},
		{CondNO, FlagOF, false},
		{CondL, FlagSF, true},
		{CondL, FlagOF, true},
		{CondL, FlagSF | FlagOF, false},
		{CondGE, FlagSF | FlagOF, true},
		{CondGE, 0, true},
		{CondLE, FlagZF, true},
		{CondLE, FlagSF, true},
		{CondLE, 0, false},
		{CondG, 0, true},
		{CondG, FlagZF, false},
		{CondP, FlagPF, true},
		{CondNP, FlagPF, false},
	}
	for _, c := range cases {
		if got := c.cond.Eval(c.flags); got != c.want {
			t.Errorf("Cond %v with flags %#x: got %v, want %v", c.cond, c.flags, got, c.want)
		}
	}
}

// Every condition and its negation must partition all flag images.
func TestCondComplement(t *testing.T) {
	for c := Cond(0); c < 16; c += 2 {
		for trial := 0; trial < 64; trial++ {
			flags := uint32(trial) | uint32(trial)<<6
			if c.Eval(flags) == (c + 1).Eval(flags) {
				t.Fatalf("cond %v and %v agree on flags %#x", c, c+1, flags)
			}
		}
	}
}

func TestCondByName(t *testing.T) {
	for c := Cond(0); c < 16; c++ {
		got, ok := CondByName(c.String())
		if !ok || got != c {
			t.Errorf("CondByName(%q) = %v, %v", c.String(), got, ok)
		}
	}
	for name, want := range map[string]Cond{"z": CondE, "nz": CondNE, "c": CondB, "nc": CondAE} {
		got, ok := CondByName(name)
		if !ok || got != want {
			t.Errorf("CondByName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
}

func TestOpTable(t *testing.T) {
	if !OpMOVrr.Valid() || OpMOVrr.Name() != "mov" || OpMOVrr.Format() != FmtRR {
		t.Error("OpMOVrr metadata wrong")
	}
	if Op(0xFF).Valid() {
		t.Error("0xFF should be an unassigned opcode")
	}
	if c, ok := (OpJccBase + Op(CondNE)).IsJcc(); !ok || c != CondNE {
		t.Error("Jcc decode of condition failed")
	}
	if _, ok := OpMOVrr.IsJcc(); ok {
		t.Error("OpMOVrr is not a Jcc")
	}
}

func TestMemOperandEffectiveAddr(t *testing.T) {
	regs := [NumRegs]uint32{}
	regs[EBX] = 0x1000
	regs[ESI] = 0x10
	m := MemOperand{HasBase: true, Base: EBX, HasIndex: true, Index: ESI, ScaleLog: 2, Disp: 8}
	if got := m.EffectiveAddr(&regs); got != 0x1000+0x40+8 {
		t.Errorf("EffectiveAddr = %#x", got)
	}
	m2 := MemOperand{Disp: 0xdeadbeef}
	if got := m2.EffectiveAddr(&regs); got != 0xdeadbeef {
		t.Errorf("absolute EffectiveAddr = %#x", got)
	}
}

// randInsn builds a random but well-formed instruction for round-trip tests.
func randInsn(r *rand.Rand) Insn {
	var valid []Op
	for op := 0; op < 256; op++ {
		if Op(op).Valid() {
			valid = append(valid, Op(op))
		}
	}
	op := valid[r.Intn(len(valid))]
	in := Insn{
		Op:  op,
		Dst: Reg(r.Intn(NumRegs)),
		Src: Reg(r.Intn(NumRegs)),
		Imm: r.Uint32(),
		Mem: MemOperand{
			HasBase:  r.Intn(2) == 0,
			Base:     Reg(r.Intn(NumRegs)),
			HasIndex: r.Intn(2) == 0,
			Index:    Reg(r.Intn(NumRegs)),
			ScaleLog: uint8(r.Intn(4)),
			Disp:     r.Uint32(),
		},
	}
	switch op.Format() {
	case FmtRI8, FmtI8:
		in.Imm &= 0xFF
	case FmtRPort, FmtPortR:
		in.Imm &= 0xFFFF
	}
	return in
}

// Encoding then decoding must reproduce the operands exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		want := randInsn(r)
		code := Encode(nil, want)
		if uint32(len(code)) != EncodedLen(want.Op) {
			t.Fatalf("EncodedLen(%v) = %d, encoded %d bytes", want.Op.Name(), EncodedLen(want.Op), len(code))
		}
		got, err := Decode(code, 0x4000)
		if err != nil {
			t.Fatalf("Decode(%v): %v", want, err)
		}
		if got.Op != want.Op {
			t.Fatalf("opcode mismatch: got %v want %v", got.Op, want.Op)
		}
		f := want.Op.Format()
		if (f == FmtR || f == FmtRR || f == FmtRI || f == FmtRI8 || f == FmtRM || f == FmtRPort) && got.Dst != want.Dst {
			t.Fatalf("%s: dst mismatch got %v want %v", want.Op.Name(), got.Dst, want.Dst)
		}
		if (f == FmtRR || f == FmtMR || f == FmtPortR) && got.Src != want.Src {
			t.Fatalf("%s: src mismatch got %v want %v", want.Op.Name(), got.Src, want.Src)
		}
		switch f {
		case FmtRI, FmtRI8, FmtMI, FmtI32, FmtRel, FmtI8, FmtRPort, FmtPortR:
			if got.Imm != want.Imm {
				t.Fatalf("%s: imm mismatch got %#x want %#x", want.Op.Name(), got.Imm, want.Imm)
			}
		}
		switch f {
		case FmtRM, FmtMR, FmtMI, FmtM:
			w := want.Mem
			if !w.HasBase {
				w.Base = got.Mem.Base // base field is don't-care when absent
			}
			if !w.HasIndex {
				w.Index = got.Mem.Index
				w.ScaleLog = got.Mem.ScaleLog
			}
			if got.Mem != w {
				t.Fatalf("%s: mem mismatch got %+v want %+v", want.Op.Name(), got.Mem, w)
			}
		}
		if got.Addr != 0x4000 || got.Len != uint32(len(code)) {
			t.Fatalf("Addr/Len not set: %+v", got)
		}
	}
}

// Encode must store operands canonically even when unused fields are noisy.
func TestEncodeAbsentMemFieldsCanonical(t *testing.T) {
	in := Insn{Op: OpMOVrm, Dst: EAX, Mem: MemOperand{Disp: 0x42}}
	code := Encode(nil, in)
	got, err := Decode(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem.HasBase || got.Mem.HasIndex || got.Mem.Disp != 0x42 {
		t.Errorf("mem decoded %+v", got.Mem)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, 0); err == nil {
		t.Error("empty fetch should fail")
	}
	if _, err := Decode([]byte{0xFF}, 0); err == nil {
		t.Error("unassigned opcode should fail")
	}
	// Truncated imm32.
	if _, err := Decode([]byte{byte(OpMOVri), 0x00, 0x01}, 0); err == nil {
		t.Error("truncated instruction should fail")
	}
	// Register out of range.
	if _, err := Decode([]byte{byte(OpINC), 0x09}, 0); err == nil {
		t.Error("register 9 should fail")
	}
	// Bad memory flag byte (reserved bits set).
	bad := []byte{byte(OpJMPm), 0xF0, 0, 0, 0, 0, 0}
	if _, err := Decode(bad, 0); err == nil {
		t.Error("reserved mem flag bits should fail")
	}
}

func TestImmOffLocatesImmediateField(t *testing.T) {
	in := Insn{Op: OpADDri, Dst: EAX, Imm: 0x11223344}
	code := Encode(nil, in)
	dec, err := Decode(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasImm32() {
		t.Fatal("ADDri must report an imm32 field")
	}
	// The 4 bytes at ImmOff must be the little-endian immediate.
	b := code[dec.ImmOff : dec.ImmOff+4]
	if b[0] != 0x44 || b[1] != 0x33 || b[2] != 0x22 || b[3] != 0x11 {
		t.Errorf("imm field bytes = % x", b)
	}
	nomem := Insn{Op: OpMOVrr, Dst: EAX, Src: EBX}
	dec2, _ := Decode(Encode(nil, nomem), 0)
	if dec2.HasImm32() {
		t.Error("MOVrr must not report an imm32 field")
	}
}

func TestBranchTarget(t *testing.T) {
	in := Insn{Op: OpJMPrel, Imm: 0xFFFFFFF0} // -16
	code := Encode(nil, in)
	dec, err := Decode(code, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	want := dec.Next() + 0xFFFFFFF0
	if dec.BranchTarget() != want {
		t.Errorf("BranchTarget = %#x, want %#x", dec.BranchTarget(), want)
	}
	if !dec.IsBlockEnd() {
		t.Error("jmp must end a block")
	}
	mov, _ := Decode(Encode(nil, Insn{Op: OpMOVrr}), 0)
	if mov.IsBlockEnd() {
		t.Error("mov must not end a block")
	}
}

func TestDisassemblyStrings(t *testing.T) {
	cases := []struct {
		in   Insn
		want string
	}{
		{Insn{Op: OpNOP}, "nop"},
		{Insn{Op: OpMOVrr, Dst: EAX, Src: EBX}, "mov eax, ebx"},
		{Insn{Op: OpMOVri, Dst: ECX, Imm: 0x10}, "mov ecx, 0x10"},
		{Insn{Op: OpMOVrm, Dst: EDX, Mem: MemOperand{HasBase: true, Base: EBX, Disp: 4}}, "mov edx, [ebx+0x4]"},
		{Insn{Op: OpOUT, Imm: 0x3F8, Src: EAX}, "out 0x3f8, eax"},
		{Insn{Op: OpINT, Imm: 0x21}, "int 33"},
	}
	for _, c := range cases {
		code := Encode(nil, c.in)
		dec, err := Decode(code, 0)
		if err != nil {
			t.Fatalf("%v: %v", c.want, err)
		}
		if dec.String() != c.want {
			t.Errorf("String() = %q, want %q", dec.String(), c.want)
		}
	}
}

// Property: decoding arbitrary bytes never panics and either fails or
// reports a length within the buffer.
func TestDecodeArbitraryBytesTotal(t *testing.T) {
	f := func(code []byte) bool {
		in, err := Decode(code, 0)
		if err != nil {
			return true
		}
		return in.Len >= 1 && in.Len <= uint32(len(code))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
