package guest

import "encoding/binary"

// Mem operand encoding: a flag byte, a register byte, then a 32-bit
// little-endian displacement.
//
//	flag byte:  bit 0 = has base, bit 1 = has index, bits 2-3 = scale log
//	reg byte:   low nibble = base register, high nibble = index register
//
// The displacement is always present, so the encoded size of a memory
// operand is a fixed 6 bytes and immediate-field offsets are static.
const memOperandLen = 6

func appendMem(b []byte, m MemOperand) []byte {
	var flags byte
	if m.HasBase {
		flags |= 1
	}
	if m.HasIndex {
		flags |= 2
	}
	flags |= (m.ScaleLog & 3) << 2
	b = append(b, flags, byte(m.Base)|byte(m.Index)<<4)
	return binary.LittleEndian.AppendUint32(b, m.Disp)
}

func decodeMem(b []byte) (MemOperand, bool) {
	if len(b) < memOperandLen {
		return MemOperand{}, false
	}
	flags := b[0]
	if flags&^0x0F != 0 {
		return MemOperand{}, false
	}
	m := MemOperand{
		HasBase:  flags&1 != 0,
		HasIndex: flags&2 != 0,
		ScaleLog: (flags >> 2) & 3,
		Base:     Reg(b[1] & 0x0F),
		Index:    Reg(b[1] >> 4),
	}
	if m.Base >= NumRegs || m.Index >= NumRegs {
		return MemOperand{}, false
	}
	m.Disp = binary.LittleEndian.Uint32(b[2:])
	return m, true
}

// Encode appends the binary encoding of the instruction described by op and
// operands to b and returns the extended slice. The Addr/Len/ImmOff fields of
// in are ignored; callers use Decode to recover them.
func Encode(b []byte, in Insn) []byte {
	b = append(b, byte(in.Op))
	switch in.Op.Format() {
	case FmtNone:
	case FmtR:
		b = append(b, byte(in.Dst))
	case FmtRR:
		b = append(b, byte(in.Dst)<<4|byte(in.Src))
	case FmtRI:
		b = append(b, byte(in.Dst))
		b = binary.LittleEndian.AppendUint32(b, in.Imm)
	case FmtRI8:
		b = append(b, byte(in.Dst), byte(in.Imm))
	case FmtRM:
		b = append(b, byte(in.Dst))
		b = appendMem(b, in.Mem)
	case FmtMR:
		b = appendMem(b, in.Mem)
		b = append(b, byte(in.Src))
	case FmtMI:
		b = appendMem(b, in.Mem)
		b = binary.LittleEndian.AppendUint32(b, in.Imm)
	case FmtM:
		b = appendMem(b, in.Mem)
	case FmtI32, FmtRel:
		b = binary.LittleEndian.AppendUint32(b, in.Imm)
	case FmtI8:
		b = append(b, byte(in.Imm))
	case FmtRPort:
		b = append(b, byte(in.Dst))
		b = binary.LittleEndian.AppendUint16(b, uint16(in.Imm))
	case FmtPortR:
		b = binary.LittleEndian.AppendUint16(b, uint16(in.Imm))
		b = append(b, byte(in.Src))
	}
	return b
}

// EncodedLen returns the encoded length in bytes of an instruction with the
// given opcode.
func EncodedLen(op Op) uint32 {
	n := uint32(1)
	switch op.Format() {
	case FmtNone:
	case FmtR:
		n++
	case FmtRR:
		n++
	case FmtRI:
		n += 1 + 4
	case FmtRI8:
		n += 2
	case FmtRM:
		n += 1 + memOperandLen
	case FmtMR:
		n += memOperandLen + 1
	case FmtMI:
		n += memOperandLen + 4
	case FmtM:
		n += memOperandLen
	case FmtI32, FmtRel:
		n += 4
	case FmtI8:
		n++
	case FmtRPort, FmtPortR:
		n += 3
	}
	return n
}
