// Package dev provides the simulated platform devices the workloads talk to:
// a serial console, an interval timer, a DMA disk controller, and a BLT
// (block-transfer) graphics engine. Together they exercise the system-level
// challenges from the paper: port I/O, memory-mapped I/O whose ordering is
// irrevocable, asynchronous interrupts, and DMA writes that land in pages
// holding translated code.
//
// All device register reads are idempotent (status registers, counters);
// bulk data moves by DMA. See DESIGN.md for why this matters to the
// commit/rollback model.
package dev

// IRQ line assignments.
const (
	IRQTimer = 0
	IRQDisk  = 1
	IRQBlt   = 2

	// NumIRQLines is the number of interrupt lines the controller routes.
	NumIRQLines = 16
)

// IRQController latches interrupt requests from devices until the CPU
// acknowledges them. It is the platform's (much simplified) PIC: level
// semantics, fixed priority with line 0 highest.
type IRQController struct {
	pending uint32
}

// Raise latches an interrupt request on the given line.
func (c *IRQController) Raise(line int) {
	if line >= 0 && line < NumIRQLines {
		c.pending |= 1 << line
	}
}

// Pending returns the highest-priority pending line, or ok=false if none.
func (c *IRQController) Pending() (line int, ok bool) {
	if c.pending == 0 {
		return 0, false
	}
	for i := 0; i < NumIRQLines; i++ {
		if c.pending&(1<<i) != 0 {
			return i, true
		}
	}
	return 0, false
}

// HasPending reports whether any line is pending, without selecting one.
func (c *IRQController) HasPending() bool { return c.pending != 0 }

// Ack clears a pending line (the CPU acknowledges on delivery).
func (c *IRQController) Ack(line int) {
	if line >= 0 && line < NumIRQLines {
		c.pending &^= 1 << line
	}
}
