package dev

import (
	"fmt"

	"cms/internal/mem"
)

// PlatformState is the serializable state of a Platform: the bus (RAM,
// attributes, protection, generations) plus every device register that can
// change after reset. The disk's backing image is included so a restored
// platform is self-contained; device-to-bus wiring is topology and is
// re-created by NewPlatform.
type PlatformState struct {
	Bus        *mem.BusState `json:"bus"`
	IRQPending uint32        `json:"irq_pending"`

	TimerPeriod uint64 `json:"timer_period"`
	TimerAccum  uint64 `json:"timer_accum"`
	TimerTicks  uint64 `json:"timer_ticks"`

	ConsoleOut        []byte `json:"console_out"`
	ConsoleText       []byte `json:"console_text"`
	ConsoleWriteCount uint64 `json:"console_write_count"`

	DiskImage []byte `json:"disk_image"`
	DiskLBA   uint32 `json:"disk_lba"`
	DiskAddr  uint32 `json:"disk_addr"`
	DiskCount uint32 `json:"disk_count"`
	DiskDone  bool   `json:"disk_done"`
	DiskReads uint64 `json:"disk_reads"`

	BltSrc   uint32 `json:"blt_src"`
	BltDst   uint32 `json:"blt_dst"`
	BltCount uint32 `json:"blt_count"`
	BltOp    uint32 `json:"blt_op"`
	BltFill  uint32 `json:"blt_fill"`
	BltOps   uint64 `json:"blt_ops"`
}

// ExportState captures the platform and all device state.
func (p *Platform) ExportState() *PlatformState {
	return &PlatformState{
		Bus:        p.Bus.ExportState(),
		IRQPending: p.IRQ.pending,

		TimerPeriod: p.Timer.period,
		TimerAccum:  p.Timer.accum,
		TimerTicks:  p.Timer.Ticks,

		ConsoleOut:        append([]byte(nil), p.Console.out...),
		ConsoleText:       p.Console.Text(),
		ConsoleWriteCount: p.Console.WriteCount,

		DiskImage: append([]byte(nil), p.Disk.image...),
		DiskLBA:   p.Disk.lba,
		DiskAddr:  p.Disk.addr,
		DiskCount: p.Disk.count,
		DiskDone:  p.Disk.done,
		DiskReads: p.Disk.Reads,

		BltSrc:   p.Blt.src,
		BltDst:   p.Blt.dst,
		BltCount: p.Blt.count,
		BltOp:    p.Blt.op,
		BltFill:  p.Blt.fill,
		BltOps:   p.Blt.ops,
	}
}

// RestorePlatform builds a fresh platform from an exported state. The
// returned platform is wired exactly as NewPlatform wires it, then every
// device register and the bus contents are overwritten with the captured
// values.
func RestorePlatform(s *PlatformState) (*Platform, error) {
	if s == nil || s.Bus == nil {
		return nil, fmt.Errorf("dev: platform state missing bus")
	}
	p := NewPlatform(s.Bus.NumPages<<mem.PageShift, append([]byte(nil), s.DiskImage...))
	if err := p.Bus.RestoreState(s.Bus); err != nil {
		return nil, err
	}
	p.IRQ.pending = s.IRQPending

	p.Timer.period = s.TimerPeriod
	p.Timer.accum = s.TimerAccum
	p.Timer.Ticks = s.TimerTicks

	p.Console.out = append([]byte(nil), s.ConsoleOut...)
	if len(s.ConsoleText) > len(p.Console.text) {
		return nil, fmt.Errorf("dev: console text buffer %d bytes, want <= %d",
			len(s.ConsoleText), len(p.Console.text))
	}
	copy(p.Console.text[:], s.ConsoleText)
	p.Console.WriteCount = s.ConsoleWriteCount

	p.Disk.lba = s.DiskLBA
	p.Disk.addr = s.DiskAddr
	p.Disk.count = s.DiskCount
	p.Disk.done = s.DiskDone
	p.Disk.Reads = s.DiskReads

	p.Blt.src = s.BltSrc
	p.Blt.dst = s.BltDst
	p.Blt.count = s.BltCount
	p.Blt.op = s.BltOp
	p.Blt.fill = s.BltFill
	p.Blt.ops = s.BltOps
	return p, nil
}
