package dev

import (
	"bytes"
	"testing"

	"cms/internal/mem"
)

func TestIRQController(t *testing.T) {
	var c IRQController
	if _, ok := c.Pending(); ok {
		t.Fatal("fresh controller must have nothing pending")
	}
	c.Raise(IRQDisk)
	c.Raise(IRQTimer)
	line, ok := c.Pending()
	if !ok || line != IRQTimer {
		t.Fatalf("Pending = %d, %v; want timer (priority)", line, ok)
	}
	c.Ack(IRQTimer)
	line, ok = c.Pending()
	if !ok || line != IRQDisk {
		t.Fatalf("after ack, Pending = %d, %v; want disk", line, ok)
	}
	c.Ack(IRQDisk)
	if c.HasPending() {
		t.Fatal("all acked, nothing should be pending")
	}
	c.Raise(-1)
	c.Raise(NumIRQLines) // out of range: ignored
	if c.HasPending() {
		t.Fatal("out-of-range raise must be ignored")
	}
}

func TestConsolePorts(t *testing.T) {
	c := NewConsole()
	if c.PortRead(ConsoleStatusPort) != 1 {
		t.Error("console must always report ready")
	}
	for _, ch := range []byte("ok\n") {
		c.PortWrite(ConsoleDataPort, uint32(ch))
	}
	if c.OutputString() != "ok\n" {
		t.Errorf("output = %q", c.OutputString())
	}
	if c.WriteCount != 3 {
		t.Errorf("WriteCount = %d", c.WriteCount)
	}
}

func TestConsoleMMIO(t *testing.T) {
	c := NewConsole()
	c.MMIOWrite(ConsoleMMIOBase+0x10, 4, 0x44434241) // "ABCD"
	if got := c.MMIORead(ConsoleMMIOBase+0x10, 4); got != 0x44434241 {
		t.Errorf("MMIORead = %#x", got)
	}
	if got := c.MMIORead(ConsoleMMIOBase+0x11, 1); got != 0x42 {
		t.Errorf("byte read = %#x", got)
	}
	txt := c.Text()
	if !bytes.Equal(txt[0x10:0x14], []byte("ABCD")) {
		t.Errorf("text buffer = %q", txt[0x10:0x14])
	}
	// Reads are idempotent: reading twice changes nothing.
	before := c.WriteCount
	c.MMIORead(ConsoleMMIOBase, 4)
	c.MMIORead(ConsoleMMIOBase, 4)
	if c.WriteCount != before {
		t.Error("reads must not count as writes")
	}
	// Out-of-range accesses are ignored.
	c.MMIOWrite(ConsoleMMIOBase+ConsoleMMIOSize-1, 4, 0)
	if c.MMIORead(ConsoleMMIOBase+ConsoleMMIOSize-1, 4) != 0 {
		t.Error("overhanging access must read 0")
	}
}

func TestTimer(t *testing.T) {
	var irq IRQController
	tm := NewTimer(&irq)
	tm.Advance(1000) // period 0: off
	if irq.HasPending() {
		t.Fatal("disabled timer must not fire")
	}
	tm.PortWrite(TimerPeriodPort, 100)
	tm.Advance(99)
	if irq.HasPending() {
		t.Fatal("99 < 100: must not fire")
	}
	tm.Advance(1)
	if line, ok := irq.Pending(); !ok || line != IRQTimer {
		t.Fatal("timer must fire at period")
	}
	irq.Ack(IRQTimer)
	tm.Advance(250) // 2.5 more periods: two more ticks
	if tm.Ticks != 3 {
		t.Errorf("Ticks = %d, want 3", tm.Ticks)
	}
	if tm.PortRead(TimerCountPort) != 3 {
		t.Errorf("count port = %d", tm.PortRead(TimerCountPort))
	}
	if tm.PortRead(TimerPeriodPort) != 100 {
		t.Errorf("period port = %d", tm.PortRead(TimerPeriodPort))
	}
}

func TestDiskDMARead(t *testing.T) {
	bus := mem.NewBus(1 << 16)
	var irq IRQController
	img := make([]byte, 4*SectorSize)
	for i := range img {
		img[i] = byte(i)
	}
	d := NewDisk(bus, &irq, img)
	if d.PortRead(DiskStatusPort) != 0 {
		t.Fatal("fresh disk must not be done")
	}
	d.PortWrite(DiskLBAPort, 1)
	d.PortWrite(DiskAddrPort, 0x2000)
	d.PortWrite(DiskCountPort, 2)
	d.PortWrite(DiskCmdPort, DiskCmdRead)
	if d.PortRead(DiskStatusPort) != 1 {
		t.Fatal("disk must report done")
	}
	if line, ok := irq.Pending(); !ok || line != IRQDisk {
		t.Fatal("disk must raise its IRQ")
	}
	got := bus.ReadRaw(0x2000, 2*SectorSize)
	if !bytes.Equal(got, img[SectorSize:3*SectorSize]) {
		t.Error("DMA data mismatch")
	}
	if d.Reads != 1 {
		t.Errorf("Reads = %d", d.Reads)
	}
}

func TestDiskDMAInvalidatesProtectedPage(t *testing.T) {
	bus := mem.NewBus(1 << 16)
	var irq IRQController
	img := make([]byte, 2*SectorSize)
	d := NewDisk(bus, &irq, img)
	bus.Protect(2)
	var hits []uint32
	bus.DMAInvalidate = func(p uint32) { hits = append(hits, p) }
	d.PortWrite(DiskLBAPort, 0)
	d.PortWrite(DiskAddrPort, 2*mem.PageSize)
	d.PortWrite(DiskCountPort, 1)
	d.PortWrite(DiskCmdPort, DiskCmdRead)
	if len(hits) != 1 || hits[0] != 2 {
		t.Errorf("DMA invalidations: %v", hits)
	}
}

func TestDiskOutOfRangeRead(t *testing.T) {
	bus := mem.NewBus(1 << 16)
	var irq IRQController
	d := NewDisk(bus, &irq, make([]byte, SectorSize))
	d.PortWrite(DiskLBAPort, 10) // beyond image
	d.PortWrite(DiskAddrPort, 0x1000)
	d.PortWrite(DiskCountPort, 1)
	d.PortWrite(DiskCmdPort, DiskCmdRead)
	if d.PortRead(DiskStatusPort) != 1 {
		t.Error("out-of-range read still completes (zero bytes)")
	}
}

func TestBltCopyFillXor(t *testing.T) {
	bus := mem.NewBus(1 << 16)
	var irq IRQController
	b := NewBlt(bus, &irq)
	bus.WriteRaw(0x1000, []byte{1, 2, 3, 4})

	prog := func(src, dst, count, op, fill uint32) {
		b.MMIOWrite(BltMMIOBase+BltRegSrc, 4, src)
		b.MMIOWrite(BltMMIOBase+BltRegDst, 4, dst)
		b.MMIOWrite(BltMMIOBase+BltRegCount, 4, count)
		b.MMIOWrite(BltMMIOBase+BltRegOp, 4, op)
		b.MMIOWrite(BltMMIOBase+BltRegFill, 4, fill)
		b.MMIOWrite(BltMMIOBase+BltRegGo, 4, 1)
	}

	prog(0x1000, 0x2000, 4, BltOpCopy, 0)
	if got := bus.ReadRaw(0x2000, 4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("copy result %v", got)
	}
	prog(0, 0x3000, 4, BltOpFill, 0xAA)
	if got := bus.ReadRaw(0x3000, 4); !bytes.Equal(got, []byte{0xAA, 0xAA, 0xAA, 0xAA}) {
		t.Errorf("fill result %v", got)
	}
	prog(0x1000, 0x2000, 4, BltOpXor, 0)
	if got := bus.ReadRaw(0x2000, 4); !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Errorf("xor result %v", got)
	}
	if b.Ops() != 3 {
		t.Errorf("Ops = %d", b.Ops())
	}
	if got := b.MMIORead(BltMMIOBase+BltRegStat, 4); got != 3 {
		t.Errorf("stat reg = %d", got)
	}
	if line, ok := irq.Pending(); !ok || line != IRQBlt {
		t.Error("BLT must raise its IRQ")
	}
}

func TestPlatformWiring(t *testing.T) {
	img := make([]byte, SectorSize)
	for i := range img {
		img[i] = 0x5A
	}
	p := NewPlatform(1<<20, img)
	// Console through the bus.
	p.Bus.PortWrite(ConsoleDataPort, 'X')
	if p.Console.OutputString() != "X" {
		t.Error("console not wired to port space")
	}
	if !p.Bus.IsMMIO(ConsoleMMIOBase) || !p.Bus.IsMMIO(BltMMIOBase) {
		t.Error("MMIO regions not mapped")
	}
	// Disk through the bus.
	p.Bus.PortWrite(DiskLBAPort, 0)
	p.Bus.PortWrite(DiskAddrPort, 0x4000)
	p.Bus.PortWrite(DiskCountPort, 1)
	p.Bus.PortWrite(DiskCmdPort, DiskCmdRead)
	if p.Bus.Read8(0x4000) != 0x5A {
		t.Error("disk not wired to bus")
	}
	// Text buffer through the bus.
	p.Bus.Write32(ConsoleMMIOBase+8, 0x31323334)
	if p.Console.Text()[8] != 0x34 {
		t.Error("text MMIO not wired")
	}
}
