package dev

import "cms/internal/mem"

// BLT engine MMIO register offsets from BltMMIOBase.
const (
	BltMMIOBase = 0xC0000
	BltMMIOSize = 0x1000

	BltRegSrc   = 0x00 // DMA source guest address
	BltRegDst   = 0x04 // DMA destination guest address
	BltRegCount = 0x08 // byte count
	BltRegOp    = 0x0C // BltOpCopy / BltOpFill / BltOpXor
	BltRegGo    = 0x10 // write anything: start
	BltRegStat  = 0x14 // read: operations completed
	BltRegFill  = 0x18 // fill byte for BltOpFill

	BltOpCopy = 0
	BltOpFill = 1
	BltOpXor  = 2
)

// Blt is a memory-mapped block-transfer engine, the analog of the graphics
// accelerators the paper's device-driver workloads (the Windows/9x
// device-independent BLT driver, §3.6.5) program through MMIO registers.
// Programming it is a burst of memory-mapped stores whose order is
// irrevocable, and its transfers are DMA writes into guest RAM.
type Blt struct {
	bus *mem.Bus
	irq *IRQController

	src, dst, count, op, fill uint32
	ops                       uint64
}

// NewBlt returns a BLT engine on the given bus.
func NewBlt(bus *mem.Bus, irq *IRQController) *Blt { return &Blt{bus: bus, irq: irq} }

// Ops returns the number of completed operations.
func (b *Blt) Ops() uint64 { return b.ops }

// MMIORead implements mem.MMIODevice. All reads are idempotent.
func (b *Blt) MMIORead(addr uint32, size int) uint32 {
	switch addr - BltMMIOBase {
	case BltRegSrc:
		return b.src
	case BltRegDst:
		return b.dst
	case BltRegCount:
		return b.count
	case BltRegOp:
		return b.op
	case BltRegStat:
		return uint32(b.ops)
	case BltRegFill:
		return b.fill
	}
	return 0
}

// MMIOWrite implements mem.MMIODevice.
func (b *Blt) MMIOWrite(addr uint32, size int, v uint32) {
	switch addr - BltMMIOBase {
	case BltRegSrc:
		b.src = v
	case BltRegDst:
		b.dst = v
	case BltRegCount:
		b.count = v
	case BltRegOp:
		b.op = v
	case BltRegFill:
		b.fill = v
	case BltRegGo:
		b.execute()
	}
}

func (b *Blt) execute() {
	n := int(b.count)
	if n < 0 || n > 1<<20 {
		n = 0
	}
	buf := make([]byte, n)
	switch b.op {
	case BltOpCopy:
		copy(buf, b.bus.ReadRaw(b.src, n))
	case BltOpFill:
		for i := range buf {
			buf[i] = byte(b.fill)
		}
	case BltOpXor:
		s := b.bus.ReadRaw(b.src, n)
		d := b.bus.ReadRaw(b.dst, n)
		for i := range buf {
			buf[i] = s[i] ^ d[i]
		}
	default:
		return
	}
	if n > 0 {
		b.bus.DMAWrite(b.dst, buf)
	}
	b.ops++
	b.irq.Raise(IRQBlt)
}
