package dev

import "cms/internal/mem"

// Disk controller port assignments.
const (
	DiskLBAPort    = 0x1F0 // write: starting sector number
	DiskAddrPort   = 0x1F4 // write: DMA destination guest address
	DiskCountPort  = 0x1F8 // write: sector count
	DiskCmdPort    = 0x1FC // write: DiskCmdRead starts a transfer
	DiskStatusPort = 0x1FD // read: bit 0 = done since last command

	// DiskCmdRead DMA-reads sectors into guest RAM.
	DiskCmdRead = 1

	// SectorSize is the disk sector size in bytes.
	SectorSize = 512
)

// Disk is a DMA disk controller. A read command copies sectors from the
// backing image straight into guest RAM via bus.DMAWrite — which is exactly
// the "system paging activity" path of §3.6.1: DMA landing on a page that
// holds translated code invalidates that page's translations.
type Disk struct {
	bus   *mem.Bus
	irq   *IRQController
	image []byte

	lba, addr, count uint32
	done             bool

	// Reads counts completed read commands.
	Reads uint64
}

// NewDisk returns a disk with the given backing image.
func NewDisk(bus *mem.Bus, irq *IRQController, image []byte) *Disk {
	return &Disk{bus: bus, irq: irq, image: image}
}

// PortRead implements mem.PortDevice.
func (d *Disk) PortRead(port uint16) uint32 {
	switch port {
	case DiskStatusPort:
		if d.done {
			return 1
		}
		return 0
	case DiskLBAPort:
		return d.lba
	case DiskAddrPort:
		return d.addr
	case DiskCountPort:
		return d.count
	}
	return 0
}

// PortWrite implements mem.PortDevice.
func (d *Disk) PortWrite(port uint16, v uint32) {
	switch port {
	case DiskLBAPort:
		d.lba = v
	case DiskAddrPort:
		d.addr = v
	case DiskCountPort:
		d.count = v
	case DiskCmdPort:
		if v == DiskCmdRead {
			d.doRead()
		}
	}
}

func (d *Disk) doRead() {
	d.done = false
	off := int(d.lba) * SectorSize
	n := int(d.count) * SectorSize
	if off > len(d.image) {
		off = len(d.image)
	}
	if off+n > len(d.image) {
		n = len(d.image) - off
	}
	if n > 0 {
		d.bus.DMAWrite(d.addr, d.image[off:off+n])
	}
	d.done = true
	d.Reads++
	d.irq.Raise(IRQDisk)
}
