package dev

import "cms/internal/mem"

// Platform bundles the bus and the standard device complement, wired the way
// every workload in this repository expects: serial console + text MMIO,
// instruction-driven timer, DMA disk, and BLT engine.
type Platform struct {
	Bus     *mem.Bus
	IRQ     *IRQController
	Console *Console
	Timer   *Timer
	Disk    *Disk
	Blt     *Blt
}

// NewPlatform builds a platform with ramSize bytes of RAM and the given disk
// image (may be nil).
func NewPlatform(ramSize uint32, diskImage []byte) *Platform {
	bus := mem.NewBus(ramSize)
	irq := &IRQController{}
	p := &Platform{
		Bus:     bus,
		IRQ:     irq,
		Console: NewConsole(),
		Timer:   NewTimer(irq),
		Disk:    NewDisk(bus, irq, diskImage),
		Blt:     NewBlt(bus, irq),
	}
	bus.MapPort(ConsoleDataPort, ConsoleStatusPort, p.Console)
	bus.MapPort(TimerPeriodPort, TimerCountPort, p.Timer)
	bus.MapPort(DiskLBAPort, DiskStatusPort, p.Disk)
	bus.MapMMIO(ConsoleMMIOBase, ConsoleMMIOSize, p.Console)
	bus.MapMMIO(BltMMIOBase, BltMMIOSize, p.Blt)
	return p
}
