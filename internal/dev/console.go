package dev

// Serial console port assignments.
const (
	ConsoleDataPort   = 0x3F8 // write: emit low byte
	ConsoleStatusPort = 0x3F9 // read: bit 0 = transmitter ready (always 1)

	// ConsoleMMIOBase is the base of the memory-mapped text buffer (think
	// of the PC's 0xB8000 text VGA). It behaves as device-backed RAM: an
	// ordinary store that cannot be told apart from a RAM store at
	// translation time — the essence of the paper's §3.4 problem.
	ConsoleMMIOBase = 0xB8000
	ConsoleMMIOSize = 0x1000
)

// Console is the serial console plus memory-mapped text buffer.
type Console struct {
	out  []byte
	text [ConsoleMMIOSize]byte

	// WriteCount counts device-visible write transactions, in order. Tests
	// use it to assert that MMIO writes are neither lost nor duplicated by
	// speculation and rollback.
	WriteCount uint64
}

// NewConsole returns a console with empty output.
func NewConsole() *Console { return &Console{} }

// Output returns everything written to the data port so far.
func (c *Console) Output() []byte { return c.out }

// OutputString returns the port output as a string.
func (c *Console) OutputString() string { return string(c.out) }

// Text returns a copy of the memory-mapped text buffer.
func (c *Console) Text() []byte {
	t := make([]byte, len(c.text))
	copy(t, c.text[:])
	return t
}

// PortRead implements mem.PortDevice.
func (c *Console) PortRead(port uint16) uint32 {
	if port == ConsoleStatusPort {
		return 1 // always ready
	}
	return 0
}

// PortWrite implements mem.PortDevice.
func (c *Console) PortWrite(port uint16, v uint32) {
	if port == ConsoleDataPort {
		c.out = append(c.out, byte(v))
		c.WriteCount++
	}
}

// MMIORead implements mem.MMIODevice. Reads are idempotent.
func (c *Console) MMIORead(addr uint32, size int) uint32 {
	off := addr - ConsoleMMIOBase
	if int(off)+size > len(c.text) {
		return 0
	}
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(c.text[off+uint32(i)]) << (8 * i)
	}
	return v
}

// MMIOWrite implements mem.MMIODevice.
func (c *Console) MMIOWrite(addr uint32, size int, v uint32) {
	off := addr - ConsoleMMIOBase
	if int(off)+size > len(c.text) {
		return
	}
	for i := 0; i < size; i++ {
		c.text[off+uint32(i)] = byte(v >> (8 * i))
	}
	c.WriteCount++
}
