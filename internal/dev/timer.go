package dev

// Timer port assignments.
const (
	TimerPeriodPort = 0x40 // write: interval in retired guest instructions (0 = off)
	TimerCountPort  = 0x41 // read: total ticks fired so far
)

// Timer is an interval timer driven by retired guest instructions rather
// than wall-clock time, which keeps every run bit-for-bit deterministic.
// When the programmed period elapses it raises IRQTimer.
type Timer struct {
	irq    *IRQController
	period uint64
	accum  uint64
	Ticks  uint64 // ticks fired (also readable from TimerCountPort)
}

// NewTimer returns a timer wired to the given interrupt controller.
func NewTimer(irq *IRQController) *Timer { return &Timer{irq: irq} }

// Advance accounts n newly retired guest instructions, raising the IRQ for
// each elapsed period.
func (t *Timer) Advance(n uint64) {
	if t.period == 0 {
		return
	}
	t.accum += n
	for t.accum >= t.period {
		t.accum -= t.period
		t.Ticks++
		t.irq.Raise(IRQTimer)
	}
}

// PortRead implements mem.PortDevice.
func (t *Timer) PortRead(port uint16) uint32 {
	switch port {
	case TimerPeriodPort:
		return uint32(t.period)
	case TimerCountPort:
		return uint32(t.Ticks)
	}
	return 0
}

// PortWrite implements mem.PortDevice.
func (t *Timer) PortWrite(port uint16, v uint32) {
	if port == TimerPeriodPort {
		t.period = uint64(v)
		t.accum = 0
	}
}
