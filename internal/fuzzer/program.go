package fuzzer

// Edit is one shrink step against the generated fragment list: remove a
// whole fragment (Insn == -1) or a single instruction. Edits index the
// ORIGINAL (unedited) generation of the seed, so a reproducer is fully
// described by (seed, config, edits) — the image is regenerated, the edits
// replayed, and the fragments relinked.
type Edit struct {
	Frag int
	Insn int // -1 = whole fragment
}

// Program is a generated guest image plus everything needed to regenerate
// it: Build(p.Seed, p.Cfg, p.Edits) reproduces Image bit-for-bit.
type Program struct {
	Seed  uint64
	Cfg   GenConfig
	Edits []Edit

	Org    uint32
	Entry  uint32
	RAM    uint32
	Budget uint64
	Image  []byte

	// BodyInsns counts instructions in removable (non-scaffolding)
	// fragments — the shrink metric reported for reproducers.
	BodyInsns int

	frags []*frag
}

// Build generates the program for seed under cfg, applies the shrink edits,
// and links the surviving fragments. An edit that would break program
// structure (removing scaffolding, a core instruction, a label definition,
// or a fragment another surviving fragment depends on) is an error: the
// shrinker never proposes one, so hitting this means a corrupt reproducer.
func Build(seed uint64, cfg GenConfig, edits []Edit) (*Program, error) {
	cfg = cfg.normalized(seed)
	full := generate(seed, cfg)

	dropFrag := make(map[int]bool)
	dropIns := make(map[int]map[int]bool)
	for _, e := range edits {
		if e.Frag < 0 || e.Frag >= len(full) {
			return nil, &linkError{"edit: fragment index out of range"}
		}
		f := full[e.Frag]
		if e.Insn == -1 {
			if f.keep {
				return nil, &linkError{"edit: cannot remove scaffolding fragment " + f.label}
			}
			dropFrag[e.Frag] = true
			continue
		}
		if f.data != nil || e.Insn < 0 || e.Insn >= len(f.body) {
			return nil, &linkError{"edit: instruction index out of range in " + f.label}
		}
		s := f.body[e.Insn]
		if s.core || s.label != "" {
			return nil, &linkError{"edit: cannot remove core instruction in " + f.label}
		}
		if dropIns[e.Frag] == nil {
			dropIns[e.Frag] = make(map[int]bool)
		}
		dropIns[e.Frag][e.Insn] = true
	}

	byLabel := make(map[string]int, len(full))
	for i, f := range full {
		byLabel[f.label] = i
	}
	var kept []*frag
	for i, f := range full {
		if dropFrag[i] {
			continue
		}
		for _, d := range f.deps {
			if j, ok := byLabel[d]; ok && dropFrag[j] {
				return nil, &linkError{"edit: " + f.label + " depends on removed " + d}
			}
		}
		if di := dropIns[i]; di != nil {
			cp := *f
			cp.body = nil
			for k := range f.body {
				if !di[k] {
					cp.body = append(cp.body, f.body[k])
				}
			}
			kept = append(kept, &cp)
		} else {
			kept = append(kept, f)
		}
	}

	image, labels, err := link(progOrg, kept)
	if err != nil {
		return nil, err
	}
	p := &Program{
		Seed:   seed,
		Cfg:    cfg,
		Edits:  edits,
		Org:    progOrg,
		Entry:  labels["entry"],
		RAM:    progRAM,
		Budget: defaultBudget,
		Image:  image,
		frags:  kept,
	}
	for _, f := range kept {
		if !f.keep && f.data == nil {
			p.BodyInsns += len(f.body)
		}
	}
	return p, nil
}

// MustBuild is Build for pristine (edit-free) generation, where the
// generator guarantees success.
func MustBuild(seed uint64, cfg GenConfig) *Program {
	p, err := Build(seed, cfg, nil)
	if err != nil {
		panic(err)
	}
	return p
}

// Disasm renders the program listing for reproducers.
func (p *Program) Disasm() []string { return disasm(p.Org, p.frags, p.Image) }
