package fuzzer

import (
	"os"
	"path/filepath"
	"testing"

	"cms/internal/guest"
)

// oracleSeeds is how many generated programs TestOracle pushes through the
// full configuration matrix (7 straight runs plus 4 checkpoint/restore
// legs each). -short trims it for quick edits.
const oracleSeeds = 500

// TestOracle is the differential oracle over generated programs: every
// seed's program runs under pure interpretation, synchronous translation
// with both backends, the pipelined engine at two worker counts, and a
// shared-store pair, and must produce byte-identical architectural state
// everywhere plus identical Metrics within each equivalence class. Four
// checkpoint legs additionally snapshot mid-run at a seed-derived boundary
// and finish in a restored engine — warm store, cold store, pipelined —
// and must be indistinguishable from their uninterrupted counterparts.
func TestOracle(t *testing.T) {
	n := uint64(oracleSeeds)
	if testing.Short() {
		n = 60
	}
	for seed := uint64(1); seed <= n; seed++ {
		_, d := CheckSeed(seed, GenConfig{}, CheckOptions{})
		if d != nil {
			t.Fatal(d.Error())
		}
	}
}

// TestOracleInjection repeats the oracle with fault-injection schedules
// armed: forced rollbacks, synthesized alias faults, forced evictions at
// commit boundaries, and forced protection hits on stores. The injected
// runs must still reach the same final guest state — that is the paper's
// recovery contract under adversarial conditions.
func TestOracleInjection(t *testing.T) {
	n := uint64(120)
	if testing.Short() {
		n = 30
	}
	for seed := uint64(1); seed <= n; seed++ {
		p, d := CheckSeed(seed, GenConfig{}, CheckOptions{Inject: true})
		if d != nil {
			t.Fatal(d.Error())
		}
		if p.BodyInsns == 0 {
			t.Fatalf("seed %d: degenerate program", seed)
		}
	}
}

// containsOp reports whether any surviving fragment uses op.
func containsOp(p *Program, ops ...guest.Op) bool {
	for _, f := range p.frags {
		for _, s := range f.body {
			for _, op := range ops {
				if s.in.Op == op {
					return true
				}
			}
		}
	}
	return false
}

// TestOracleCatchesMutation is the mutation test for the oracle itself: a
// synthetic semantics bug — "the compiled backend mishandles SBB" — is
// planted via the Mutate hook, the oracle must catch it, the shrinker must
// reduce the failing program to a minimal reproducer (<= 32 body
// instructions), and the reproducer must survive a write/load/replay
// round trip.
func TestOracleCatchesMutation(t *testing.T) {
	sbb := func(p *Program) bool {
		return containsOp(p, guest.OpSBBrr, guest.OpSBBri)
	}
	failingOpts := func(p *Program) CheckOptions {
		if !sbb(p) {
			return CheckOptions{}
		}
		return CheckOptions{Mutate: func(st *State) {
			if st.Name == "compiled" {
				st.Regs[guest.EBX] ^= 0x40 // the planted wrong result
			}
		}}
	}

	// Find a seed whose program uses SBB.
	var victim *Program
	for seed := uint64(1); seed <= 200; seed++ {
		p := MustBuild(seed, GenConfig{})
		if sbb(p) {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no SBB-bearing program in 200 seeds; generator weights changed?")
	}

	d := CheckProgram(victim, failingOpts(victim))
	if d == nil {
		t.Fatal("oracle missed the planted mutation")
	}
	if d.Field != "arch" {
		t.Fatalf("wrong divergence field %q", d.Field)
	}

	fails := func(p *Program) bool {
		return CheckProgram(p, failingOpts(p)) != nil
	}
	small := Shrink(victim, fails, 150)
	if !fails(small) {
		t.Fatal("shrunk program no longer fails")
	}
	if small.BodyInsns > 32 {
		t.Fatalf("shrunk reproducer too large: %d body insns (want <= 32)", small.BodyInsns)
	}
	t.Logf("shrunk seed %#x: %d -> %d body insns, %d edits",
		small.Seed, victim.BodyInsns, small.BodyInsns, len(small.Edits))

	// Round-trip through the reproducer format.
	path := filepath.Join(t.TempDir(), "repro.txt")
	if err := WriteReproducer(path, small, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if !fails(back) {
		t.Fatal("reloaded reproducer no longer fails")
	}
}

// TestCorpusReplay regenerates and re-checks every reproducer in
// testdata/corpus. The corpus holds shrunk programs from past findings (and
// one seed archived at introduction); each must still build bit-identically
// and pass the oracle.
func TestCorpusReplay(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus: testdata/corpus should hold at least one entry")
	}
	for _, path := range entries {
		p, err := LoadReproducer(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if d := CheckProgram(p, CheckOptions{Inject: true}); d != nil {
			t.Errorf("%s: %s", path, d.Error())
		}
	}
}

// TestScheduleProgress: a schedule never forces protection hits on
// consecutive checks, the invariant that keeps resolve-retry loops finite.
func TestScheduleProgress(t *testing.T) {
	s := NewSchedule(7)
	prev := false
	for i := 0; i < 10_000; i++ {
		hit := s.ForceProtHit(0x1000, 4, 0)
		if hit && prev {
			t.Fatal("consecutive forced protection hits")
		}
		prev = hit
	}
}

// TestWriteReproducerSmoke writes a pristine program's reproducer and loads
// it back, exercising the no-edit path.
func TestWriteReproducerSmoke(t *testing.T) {
	p := MustBuild(42, GenConfig{})
	path := filepath.Join(t.TempDir(), "seed42.txt")
	if err := WriteReproducer(path, p, nil); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.BodyInsns != p.BodyInsns {
		t.Fatalf("round trip changed body size: %d vs %d", back.BodyInsns, p.BodyInsns)
	}
	data, _ := os.ReadFile(path)
	if len(data) == 0 {
		t.Fatal("empty reproducer")
	}
}
