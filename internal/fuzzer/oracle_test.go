package fuzzer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cms/internal/guest"
	"cms/internal/risc"
)

// oracleSeeds is how many generated programs TestOracle pushes through the
// full configuration matrix (8 straight runs plus 5 checkpoint/restore
// legs each). -short trims it for quick edits.
const oracleSeeds = 500

// TestOracle is the differential oracle over generated programs: every
// seed's program runs under pure interpretation, synchronous translation
// with and without the compiled backend, the risc register-IR backend, the
// pipelined engine at two worker counts, and a shared-store pair, and must
// produce byte-identical architectural state everywhere plus identical
// Metrics within each equivalence class. Five checkpoint legs additionally
// snapshot mid-run at a seed-derived boundary and finish in a restored
// engine — warm store, cold store, pipelined, risc against a mixed-backend
// store — and must be indistinguishable from their uninterrupted
// counterparts.
func TestOracle(t *testing.T) {
	n := uint64(oracleSeeds)
	if testing.Short() {
		n = 60
	}
	for seed := uint64(1); seed <= n; seed++ {
		_, d := CheckSeed(seed, GenConfig{}, CheckOptions{})
		if d != nil {
			t.Fatal(d.Error())
		}
	}
}

// TestOracleInjection repeats the oracle with fault-injection schedules
// armed: forced rollbacks, synthesized alias faults, forced evictions at
// commit boundaries, and forced protection hits on stores. The injected
// runs must still reach the same final guest state — that is the paper's
// recovery contract under adversarial conditions.
func TestOracleInjection(t *testing.T) {
	n := uint64(120)
	if testing.Short() {
		n = 30
	}
	for seed := uint64(1); seed <= n; seed++ {
		p, d := CheckSeed(seed, GenConfig{}, CheckOptions{Inject: true})
		if d != nil {
			t.Fatal(d.Error())
		}
		if p.BodyInsns == 0 {
			t.Fatalf("seed %d: degenerate program", seed)
		}
	}
}

// containsOp reports whether any surviving fragment uses op.
func containsOp(p *Program, ops ...guest.Op) bool {
	for _, f := range p.frags {
		for _, s := range f.body {
			for _, op := range ops {
				if s.in.Op == op {
					return true
				}
			}
		}
	}
	return false
}

// TestOracleCatchesMutation is the mutation test for the oracle itself: a
// synthetic semantics bug — "the compiled backend mishandles SBB" — is
// planted via the Mutate hook, the oracle must catch it, the shrinker must
// reduce the failing program to a minimal reproducer (<= 32 body
// instructions), and the reproducer must survive a write/load/replay
// round trip.
func TestOracleCatchesMutation(t *testing.T) {
	sbb := func(p *Program) bool {
		return containsOp(p, guest.OpSBBrr, guest.OpSBBri)
	}
	failingOpts := func(p *Program) CheckOptions {
		if !sbb(p) {
			return CheckOptions{}
		}
		return CheckOptions{Mutate: func(st *State) {
			if st.Name == "compiled" {
				st.Regs[guest.EBX] ^= 0x40 // the planted wrong result
			}
		}}
	}

	// Find a seed whose program uses SBB.
	var victim *Program
	for seed := uint64(1); seed <= 200; seed++ {
		p := MustBuild(seed, GenConfig{})
		if sbb(p) {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no SBB-bearing program in 200 seeds; generator weights changed?")
	}

	d := CheckProgram(victim, failingOpts(victim))
	if d == nil {
		t.Fatal("oracle missed the planted mutation")
	}
	if d.Field != "arch" {
		t.Fatalf("wrong divergence field %q", d.Field)
	}

	fails := func(p *Program) bool {
		return CheckProgram(p, failingOpts(p)) != nil
	}
	small := Shrink(victim, fails, 150)
	if !fails(small) {
		t.Fatal("shrunk program no longer fails")
	}
	if small.BodyInsns > 32 {
		t.Fatalf("shrunk reproducer too large: %d body insns (want <= 32)", small.BodyInsns)
	}
	t.Logf("shrunk seed %#x: %d -> %d body insns, %d edits",
		small.Seed, victim.BodyInsns, small.BodyInsns, len(small.Edits))

	// Round-trip through the reproducer format.
	path := filepath.Join(t.TempDir(), "repro.txt")
	if err := WriteReproducer(path, small, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if !fails(back) {
		t.Fatal("reloaded reproducer no longer fails")
	}
}

// TestOracleCatchesRiscMutation is the mutation test for the ninth leg: a
// REAL lazy-flags bug — the materializer feeding the wrong carry into
// ADC/SBB flag images — is planted behind risc.TestWrongCarry, and the
// oracle must pin it on a risc leg, the shrinker must reduce the failing
// program to <= 32 body instructions, and the reproducer must survive a
// write/load round trip (still failing with the hook set, passing without
// it). Unlike the SBB state-mutation test above, nothing is faked at
// comparison time: the bug lives in the executor and only programs whose
// ADC/SBB flag results stay architecturally live can expose it.
func TestOracleCatchesRiscMutation(t *testing.T) {
	risc.TestWrongCarry = true
	defer func() { risc.TestWrongCarry = false }()

	carry := func(p *Program) bool {
		return containsOp(p, guest.OpADCrr, guest.OpADCri, guest.OpSBBrr, guest.OpSBBri)
	}
	fails := func(p *Program) bool {
		return CheckProgram(p, CheckOptions{}) != nil
	}

	// Find a seed whose program both uses ADC/SBB and keeps the flag image
	// live enough for the wrong carry to reach architectural state.
	var victim *Program
	var d *Divergence
	for seed := uint64(1); seed <= 200; seed++ {
		p := MustBuild(seed, GenConfig{})
		if !carry(p) {
			continue
		}
		if dd := CheckProgram(p, CheckOptions{}); dd != nil {
			victim, d = p, dd
			break
		}
	}
	if victim == nil {
		t.Fatal("no seed in 200 exposes the wrong-carry materializer; generator weights changed?")
	}
	if d.Field != "arch" {
		t.Fatalf("wrong divergence field %q", d.Field)
	}
	if !strings.Contains(d.B, "risc") {
		t.Fatalf("divergence blames %q, want a risc leg", d.B)
	}

	small := Shrink(victim, fails, 150)
	if !fails(small) {
		t.Fatal("shrunk program no longer fails")
	}
	if small.BodyInsns > 32 {
		t.Fatalf("shrunk reproducer too large: %d body insns (want <= 32)", small.BodyInsns)
	}
	t.Logf("shrunk seed %#x: %d -> %d body insns, %d edits",
		small.Seed, victim.BodyInsns, small.BodyInsns, len(small.Edits))

	path := filepath.Join(t.TempDir(), "repro.txt")
	if err := WriteReproducer(path, small, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if !fails(back) {
		t.Fatal("reloaded reproducer no longer fails")
	}

	// With the hook withdrawn the same program must pass: the divergence
	// was the planted executor bug, not a latent one.
	risc.TestWrongCarry = false
	if dd := CheckProgram(back, CheckOptions{}); dd != nil {
		t.Fatalf("reproducer fails with the hook off: %v", dd)
	}
	risc.TestWrongCarry = true
}

// TestCorpusReplay regenerates and re-checks every reproducer in
// testdata/corpus. The corpus holds shrunk programs from past findings (and
// one seed archived at introduction); each must still build bit-identically
// and pass the oracle.
func TestCorpusReplay(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus: testdata/corpus should hold at least one entry")
	}
	for _, path := range entries {
		p, err := LoadReproducer(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if d := CheckProgram(p, CheckOptions{Inject: true}); d != nil {
			t.Errorf("%s: %s", path, d.Error())
		}
	}
}

// TestScheduleProgress: a schedule never forces protection hits on
// consecutive checks, the invariant that keeps resolve-retry loops finite.
func TestScheduleProgress(t *testing.T) {
	s := NewSchedule(7)
	prev := false
	for i := 0; i < 10_000; i++ {
		hit := s.ForceProtHit(0x1000, 4, 0)
		if hit && prev {
			t.Fatal("consecutive forced protection hits")
		}
		prev = hit
	}
}

// TestWriteReproducerSmoke writes a pristine program's reproducer and loads
// it back, exercising the no-edit path.
func TestWriteReproducerSmoke(t *testing.T) {
	p := MustBuild(42, GenConfig{})
	path := filepath.Join(t.TempDir(), "seed42.txt")
	if err := WriteReproducer(path, p, nil); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.BodyInsns != p.BodyInsns {
		t.Fatalf("round trip changed body size: %d vs %d", back.BodyInsns, p.BodyInsns)
	}
	data, _ := os.ReadFile(path)
	if len(data) == 0 {
		t.Fatal("empty reproducer")
	}
}
