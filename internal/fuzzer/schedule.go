package fuzzer

import (
	"encoding/json"

	"cms/internal/cms"
	"cms/internal/mem"
)

// Schedule is a replayable fault-injection plan derived from a seed. It
// implements cms.Injector for the engine's commit-boundary hook and exposes
// ForceProtHit for the bus hook: together they force every recovery path —
// spurious rollbacks, synthesized alias faults, mid-chain evictions, and
// protection hits on arbitrary stores — at deterministic points.
//
// The injected events must be invisible in final guest state: they ride the
// same recovery machinery real faults do, so an injected run is compared
// architecturally against an uninjected baseline.
type Schedule struct {
	period uint64 // commit boundaries between injections (>= 2)
	count  uint64
	ai     int

	protPeriod uint64 // CheckProt consults between forced hits (>= 3)
	protCount  uint64
	protFired  bool // last consult fired; never fire twice in a row

	// panicEvery, when non-zero, fires cms.InjectPanic every panicEvery-th
	// commit boundary (chaos schedules only — an injected panic is NOT
	// architecturally invisible; it exists to drive the farm's panic
	// quarantine and retry machinery, never the oracle).
	panicEvery uint64
	panicCount uint64

	actions [3]cms.InjectAction
}

// NewSchedule derives a schedule from seed. Periods are kept >= 3 and hits
// never fire consecutively, so the engine's resolve-and-retry loops always
// make progress between injections.
func NewSchedule(seed uint64) *Schedule {
	r := rng{s: seed ^ 0xD1B54A32D192ED03}
	s := &Schedule{
		period:     uint64(4 + r.n(6)),
		protPeriod: uint64(5 + r.n(7)),
		actions:    [3]cms.InjectAction{cms.InjectRollback, cms.InjectAliasFault, cms.InjectEvict},
	}
	// Seed-dependent rotation so different seeds lead with different events.
	s.ai = r.n(3)
	return s
}

// NewChaosSchedule is NewSchedule plus deterministic panic injection: on top
// of the recovery-path rotation, every panicEvery-th commit boundary fires
// cms.InjectPanic. The panic period is derived from the seed and kept large
// relative to the fault period, so a chaotic run exercises real recovery
// several times before it blows up — and the blow-up lands at a
// seed-determined boundary that an incident replay reproduces exactly.
func NewChaosSchedule(seed uint64) *Schedule {
	s := NewSchedule(seed)
	r := rng{s: seed ^ 0x9E3779B97F4A7C15}
	s.panicEvery = uint64(24 + r.n(40))
	return s
}

// TexecBoundary implements cms.Injector.
func (s *Schedule) TexecBoundary(entry uint32, retired uint64) cms.InjectAction {
	if s.panicEvery > 0 {
		s.panicCount++
		if s.panicCount%s.panicEvery == 0 {
			return cms.InjectPanic
		}
	}
	s.count++
	if s.count%s.period != 0 {
		return cms.InjectNone
	}
	a := s.actions[s.ai%len(s.actions)]
	s.ai++
	return a
}

// scheduleState is the serialized mutable state of a Schedule. The derived
// constants (periods, action rotation) are reproduced by constructing the
// schedule from the same seed; only the progress counters ride a snapshot.
type scheduleState struct {
	Count      uint64 `json:"count"`
	AI         int    `json:"ai"`
	ProtCount  uint64 `json:"prot_count"`
	ProtFired  bool   `json:"prot_fired"`
	PanicCount uint64 `json:"panic_count"`
}

// SnapshotState implements cms.StatefulInjector: it serializes the
// schedule's progress so a restored run's injections continue exactly where
// the captured run's stopped.
func (s *Schedule) SnapshotState() []byte {
	b, err := json.Marshal(scheduleState{
		Count:      s.count,
		AI:         s.ai,
		ProtCount:  s.protCount,
		ProtFired:  s.protFired,
		PanicCount: s.panicCount,
	})
	if err != nil {
		panic(err) // plain integers cannot fail to marshal
	}
	return b
}

// RestoreState implements cms.StatefulInjector. The receiver must have been
// built from the same seed as the captured schedule.
func (s *Schedule) RestoreState(b []byte) error {
	var st scheduleState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	s.count = st.Count
	s.ai = st.AI
	s.protCount = st.ProtCount
	s.protFired = st.ProtFired
	s.panicCount = st.PanicCount
	return nil
}

// ForceProtHit is installed as mem.Bus.ForceProtHit. It fires on every
// protPeriod-th protection check, never consecutively: the retried store
// must pass on its second attempt or the engine would spin.
func (s *Schedule) ForceProtHit(addr uint32, size int, src mem.WriteSource) bool {
	s.protCount++
	if s.protFired {
		s.protFired = false
		return false
	}
	if s.protCount%s.protPeriod != 0 {
		return false
	}
	s.protFired = true
	return true
}
