// Package fuzzer is the generative testing subsystem: a seeded, deterministic
// generator of random-but-valid g86 guest programs, a differential oracle
// that runs each program through every execution configuration of the engine
// and asserts byte-identical outcomes, replayable fault-injection schedules,
// and an automatic shrinker that reduces failing programs to minimal
// reproducers.
//
// The package exists because the paper's whole argument — speculation is safe
// only if every assumption failure is caught and recovered bit-exactly — is a
// universally quantified claim, and a fixed workload suite only samples it.
// The generator samples it adversarially: flag-sensitive ALU chains, memory
// aliasing, stylized and hostile self-modifying code, MMIO touches, and
// timer-interrupt pressure, all from one 64-bit seed.
package fuzzer

import (
	"encoding/binary"
	"fmt"

	"cms/internal/guest"
)

// refKind says which field of an instruction a symbolic reference patches.
type refKind uint8

const (
	refNone refKind = iota
	refRel          // Imm = label+addend - next-insn address (rel32 branches)
	refImm          // Imm = label+addend (absolute address immediates)
	refDisp         // Mem.Disp = label+addend (absolute memory operands)
)

// ins is one symbolic instruction: a guest.Insn plus an optional label
// definition at its own address and an optional reference to another label.
type ins struct {
	in    guest.Insn
	label string  // defines label at this instruction's address ("" = none)
	kind  refKind // reference into in, resolved at link time
	ref   string
	add   uint32 // addend applied to the referenced label
	core  bool   // structurally required: the shrinker must not remove it
}

// dataRef is a 32-bit little-endian label fixup into a data fragment.
type dataRef struct {
	off   uint32
	label string
}

// frag is one program fragment: either code (body) or raw data. Fragments
// are the shrinker's unit of removal; scaffolding fragments (keep) and
// fragments other fragments depend on survive every shrink.
type frag struct {
	label string // defined at the fragment's first byte
	kind  string // generator classification, for reproducer listings
	body  []ins
	data  []byte
	drefs []dataRef
	keep  bool     // scaffolding: IVT, handlers, loop shell, epilogue
	deps  []string // labels of fragments that must remain if this one does
}

// end returns the fragment's end label name, defined just past its last byte.
func (f *frag) end() string { return f.label + "$end" }

// linkError reports an unresolved label or layout failure; generator bugs,
// not guest bugs, so callers treat it as fatal.
type linkError struct{ msg string }

func (e *linkError) Error() string { return "fuzzer: link: " + e.msg }

// link assembles the fragments into a flat image based at org. Two passes:
// sizes are static per opcode, so pass one assigns addresses and defines
// labels, pass two encodes with references resolved.
func link(org uint32, frags []*frag) (image []byte, labels map[string]uint32, err error) {
	labels = make(map[string]uint32)
	addr := org
	for _, f := range frags {
		if f.label != "" {
			if _, dup := labels[f.label]; dup {
				return nil, nil, &linkError{"duplicate label " + f.label}
			}
			labels[f.label] = addr
		}
		if f.data != nil {
			addr += uint32(len(f.data))
		} else {
			for i := range f.body {
				if l := f.body[i].label; l != "" {
					if _, dup := labels[l]; dup {
						return nil, nil, &linkError{"duplicate label " + l}
					}
					labels[l] = addr
				}
				addr += guest.EncodedLen(f.body[i].in.Op)
			}
		}
		labels[f.end()] = addr
	}

	image = make([]byte, 0, addr-org)
	for _, f := range frags {
		if f.data != nil {
			base := uint32(len(image))
			image = append(image, f.data...)
			for _, dr := range f.drefs {
				v, ok := labels[dr.label]
				if !ok {
					return nil, nil, &linkError{"undefined label " + dr.label}
				}
				binary.LittleEndian.PutUint32(image[base+dr.off:], v)
			}
			continue
		}
		for i := range f.body {
			s := &f.body[i]
			in := s.in
			here := org + uint32(len(image))
			if s.kind != refNone {
				v, ok := labels[s.ref]
				if !ok {
					return nil, nil, &linkError{"undefined label " + s.ref}
				}
				v += s.add
				switch s.kind {
				case refRel:
					in.Imm = v - (here + guest.EncodedLen(in.Op))
				case refImm:
					in.Imm = v
				case refDisp:
					in.Mem.Disp = v
				}
			}
			image = guest.Encode(image, in)
		}
	}
	return image, labels, nil
}

// disasm renders the linked program for reproducer listings: one line per
// instruction of every code fragment, prefixed with addresses and fragment
// kinds. It re-decodes from the image so patched references read correctly.
func disasm(org uint32, frags []*frag, image []byte) []string {
	var out []string
	addr := org
	for _, f := range frags {
		if f.data != nil {
			out = append(out, fmt.Sprintf("# %#06x: %s (%d data bytes)", addr, f.kind, len(f.data)))
			addr += uint32(len(f.data))
			continue
		}
		out = append(out, fmt.Sprintf("# %s (%s):", f.label, f.kind))
		for range f.body {
			off := addr - org
			in, err := guest.Decode(image[off:], addr)
			if err != nil {
				out = append(out, fmt.Sprintf("# %#06x: <undecodable: %v>", addr, err))
				break
			}
			out = append(out, fmt.Sprintf("# %#06x: %s", addr, in))
			addr += in.Len
		}
	}
	return out
}
