package fuzzer

import (
	"errors"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/snapshot"
)

// The checkpoint/restore oracle leg: run a program to a seed-derived commit
// boundary, snapshot the VM, restore the snapshot into a completely fresh
// engine, and finish the run there. The combined outcome — architectural
// state AND simulated Metrics — must be bit-identical to the uninterrupted
// run of the same configuration. That is the snapshot subsystem's whole
// contract, and it must hold at arbitrary boundaries, with warm or cold
// shared stores, with the translation pipeline mid-flight, and under fault
// injection.

// snapCancelQuantum is deliberately tiny so the watchdog poll lands close
// to the requested retirement target and checkpoint boundaries vary finely
// across seeds (the default quantum would quantize them to 4096-instruction
// steps).
const snapCancelQuantum = 257

// snapTarget picks the retirement count to checkpoint at: a seed-dependent
// fraction of the uninterrupted run's total, so across seeds checkpoints
// land early, late, and (for salt variants) at several points of the same
// program.
func snapTarget(total, seed uint64) uint64 {
	if total == 0 {
		return 1
	}
	t := 1 + total*(1+seed%7)/9
	if t > total {
		t = total
	}
	return t
}

// runSnapshotted executes p under cfg until the target retirement count,
// checkpoints through the full encode/decode envelope, restores into a
// fresh engine (restoreMod may retarget the restore configuration — e.g.
// swap in a cold shared store), and runs the restored engine to completion.
// capSched/resSched, when non-nil, arm fault injection: capSched drives the
// captured run, resSched (same seed, fresh state) is fast-forwarded from
// the snapshot and drives the rest.
func runSnapshotted(p *Program, name string, cfg cms.Config, target uint64,
	restoreMod func(*cms.Config), capSched, resSched *Schedule) *State {

	plat := dev.NewPlatform(p.RAM, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	runCfg := cfg
	if capSched != nil {
		runCfg.Injector = capSched
		plat.Bus.ForceProtHit = capSched.ForceProtHit
	}
	runCfg.CancelQuantum = snapCancelQuantum
	var eng *cms.Engine
	runCfg.Cancel = func() bool { return eng.Metrics.GuestTotal() >= target }
	eng = cms.New(plat, p.Entry, runCfg)
	err := eng.Run(p.Budget)
	if err != nil && !errors.Is(err, cms.ErrCancelled) {
		// The run ended (error or budget) before the checkpoint fired;
		// nothing left to resume. Capture as-is — budget states are
		// filtered by the oracle, errors must match the baseline anyway.
		return Capture(name, eng, plat, err)
	}

	blob, serr := snapshot.Save(eng)
	if serr != nil {
		return &State{Name: name, Err: "snapshot save: " + serr.Error()}
	}
	restCfg := cfg
	restCfg.Cancel = nil
	if resSched != nil {
		restCfg.Injector = resSched
	}
	if restoreMod != nil {
		restoreMod(&restCfg)
	}
	e2, lerr := snapshot.Load(blob, restCfg)
	if lerr != nil {
		return &State{Name: name, Err: "snapshot load: " + lerr.Error()}
	}
	if resSched != nil {
		e2.Plat.Bus.ForceProtHit = resSched.ForceProtHit
	}
	return Capture(name, e2, e2.Plat, e2.Run(p.Budget))
}
