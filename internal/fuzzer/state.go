package fuzzer

import (
	"bytes"
	"fmt"
	"reflect"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/tcache"
)

// State is the complete observable outcome of one run of a generated
// program under one engine configuration: final architectural state, every
// externally visible side effect, and the simulated performance counters.
type State struct {
	Name string // configuration label

	Regs   [guest.NumRegs]uint32
	EIP    uint32
	Flags  uint32
	Halted bool
	Err    string // engine error, "" for a clean halt

	Console string // serial port output, in emission order
	Text    string // MMIO text buffer contents
	Mem     []byte // full guest RAM image

	Metrics cms.Metrics
	Cache   tcache.Stats
}

// RunProgram executes p under cfg and captures the outcome. sched, when
// non-nil, arms the fault-injection hooks on both the engine and the bus.
func RunProgram(p *Program, name string, cfg cms.Config, sched *Schedule) *State {
	plat := dev.NewPlatform(p.RAM, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	if sched != nil {
		cfg.Injector = sched
		plat.Bus.ForceProtHit = sched.ForceProtHit
	}
	e := cms.New(plat, p.Entry, cfg)
	return Capture(name, e, plat, e.Run(p.Budget))
}

// Capture snapshots a finished engine run into a State. It is shared by the
// oracle and by the backend/farm differential tests, so every differential
// in the repo compares the same set of observables the same way.
func Capture(name string, e *cms.Engine, plat *dev.Platform, err error) *State {
	cpu := e.CPU()
	st := &State{
		Name:    name,
		Regs:    cpu.Regs,
		EIP:     cpu.EIP,
		Flags:   cpu.Flags,
		Halted:  cpu.Halted,
		Console: plat.Console.OutputString(),
		Text:    string(plat.Console.Text()),
		Mem:     plat.Bus.ReadRaw(0, int(plat.Bus.RAMSize())),
		Metrics: e.Metrics,
		Cache:   e.Cache.Stats,
	}
	if err != nil {
		st.Err = err.Error()
	}
	return st
}

// DiffArch compares everything the guest can observe: registers, flags,
// halt/error status, console and MMIO output, and the full memory image.
// It returns "" when identical, else a one-line description of the first
// difference.
func DiffArch(a, b *State) string {
	if a.Halted != b.Halted {
		return fmt.Sprintf("halted: %s=%v %s=%v", a.Name, a.Halted, b.Name, b.Halted)
	}
	if a.Err != b.Err {
		return fmt.Sprintf("err: %s=%q %s=%q", a.Name, a.Err, b.Name, b.Err)
	}
	if a.Regs != b.Regs {
		for i := range a.Regs {
			if a.Regs[i] != b.Regs[i] {
				return fmt.Sprintf("reg %s: %s=%#x %s=%#x", guest.Reg(i), a.Name, a.Regs[i], b.Name, b.Regs[i])
			}
		}
	}
	if a.EIP != b.EIP {
		return fmt.Sprintf("eip: %s=%#x %s=%#x", a.Name, a.EIP, b.Name, b.EIP)
	}
	if a.Flags != b.Flags {
		return fmt.Sprintf("flags: %s=%#x %s=%#x", a.Name, a.Flags, b.Name, b.Flags)
	}
	if a.Console != b.Console {
		return fmt.Sprintf("console: %s=%q %s=%q", a.Name, a.Console, b.Name, b.Console)
	}
	if a.Text != b.Text {
		return fmt.Sprintf("mmio text differs (%s vs %s)", a.Name, b.Name)
	}
	if !bytes.Equal(a.Mem, b.Mem) {
		for i := range a.Mem {
			if a.Mem[i] != b.Mem[i] {
				return fmt.Sprintf("mem[%#x]: %s=%#x %s=%#x", i, a.Name, a.Mem[i], b.Name, b.Mem[i])
			}
		}
	}
	return ""
}

// DiffMetrics compares the simulated performance counters and translation
// cache statistics — valid only between configurations in the same metrics
// equivalence class (see oracle.go).
func DiffMetrics(a, b *State) string {
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		return fmt.Sprintf("metrics: %s=%+v\n%s=%+v", a.Name, a.Metrics, b.Name, b.Metrics)
	}
	if a.Cache != b.Cache {
		return fmt.Sprintf("cache stats: %s=%+v %s=%+v", a.Name, a.Cache, b.Name, b.Cache)
	}
	return ""
}
