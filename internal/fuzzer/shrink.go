package fuzzer

// Shrink reduces a failing program to a minimal reproducer. It works on the
// edit list — fragments first, then individual instructions — so the result
// is still fully described by (seed, config, edits) and regenerates
// bit-for-bit. fails must report whether a candidate still exhibits the
// failure; maxAttempts caps how many candidates are evaluated (each
// evaluation is a full oracle matrix, so this bounds shrink cost).
//
// Structural elements are never candidates: scaffolding fragments, core
// instructions, label-carrying instructions, and fragments that surviving
// fragments depend on all stay, which is what guarantees every candidate
// still terminates deterministically.
func Shrink(p *Program, fails func(*Program) bool, maxAttempts int) *Program {
	if maxAttempts <= 0 {
		maxAttempts = 200
	}
	full := generate(p.Seed, p.Cfg)
	edits := append([]Edit(nil), p.Edits...)
	best := p
	attempts := 0

	try := func(extra Edit) bool {
		if attempts >= maxAttempts {
			return false
		}
		next := append(append([]Edit(nil), edits...), extra)
		cand, err := Build(p.Seed, p.Cfg, next)
		if err != nil {
			return false
		}
		attempts++
		if !fails(cand) {
			return false
		}
		edits = next
		best = cand
		return true
	}

	for {
		progress := false

		// Phase 1: drop whole fragments. Dependency targets (call
		// subroutines) become candidates once their last caller is gone,
		// which the next round picks up.
		removed := make(map[int]bool)
		for _, e := range edits {
			if e.Insn == -1 {
				removed[e.Frag] = true
			}
		}
		depended := make(map[string]bool)
		for i, f := range full {
			if removed[i] {
				continue
			}
			for _, d := range f.deps {
				depended[d] = true
			}
		}
		for i, f := range full {
			if removed[i] || f.keep || f.data != nil || depended[f.label] {
				continue
			}
			if try(Edit{Frag: i, Insn: -1}) {
				removed[i] = true
				progress = true
			}
		}

		// Phase 2: drop individual instructions from surviving fragments.
		dropped := make(map[Edit]bool)
		for _, e := range edits {
			dropped[e] = true
		}
		for i, f := range full {
			if removed[i] || f.keep || f.data != nil {
				continue
			}
			for k := range f.body {
				s := &f.body[k]
				if s.core || s.label != "" || dropped[Edit{Frag: i, Insn: k}] {
					continue
				}
				if try(Edit{Frag: i, Insn: k}) {
					progress = true
				}
			}
		}

		if !progress || attempts >= maxAttempts {
			return best
		}
	}
}
