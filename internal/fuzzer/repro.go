package fuzzer

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Reproducers are small text files: the seed, the generation config, and
// the shrink edits — everything Build needs to regenerate the failing image
// bit-for-bit — plus a hash that proves the regeneration matched and a
// commented listing for human readers. They live in testdata/corpus/ and
// are replayed by TestCorpusReplay and `cmsfuzz -replay`.

// WriteReproducer writes p (and the divergence that condemned it) to path.
func WriteReproducer(path string, p *Program, d *Divergence) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# g86 fuzzer reproducer — replay with: cmsfuzz -replay %s\n", path)
	if d != nil {
		for _, line := range strings.Split(d.Error(), "\n") {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	fmt.Fprintf(&b, "seed %#x\n", p.Seed)
	fmt.Fprintf(&b, "frags %d\n", p.Cfg.Frags)
	fmt.Fprintf(&b, "outer %d\n", p.Cfg.Outer)
	var gates []string
	if p.Cfg.NoSMC {
		gates = append(gates, "nosmc")
	}
	if p.Cfg.NoIRQ {
		gates = append(gates, "noirq")
	}
	if p.Cfg.NoMMIO {
		gates = append(gates, "nommio")
	}
	if p.Cfg.NoFault {
		gates = append(gates, "nofault")
	}
	if len(gates) > 0 {
		fmt.Fprintf(&b, "gates %s\n", strings.Join(gates, ","))
	}
	for _, e := range p.Edits {
		fmt.Fprintf(&b, "edit %d %d\n", e.Frag, e.Insn)
	}
	sum := sha256.Sum256(p.Image)
	fmt.Fprintf(&b, "sha256 %s\n", hex.EncodeToString(sum[:]))
	fmt.Fprintf(&b, "# %d body instructions after shrink\n", p.BodyInsns)
	for _, line := range p.Disasm() {
		fmt.Fprintf(&b, "%s\n", line)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// LoadReproducer regenerates the program described by the file at path and
// verifies the image hash, so a stale corpus entry (one whose generator
// output drifted) fails loudly instead of silently testing something else.
func LoadReproducer(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var (
		seed     uint64
		cfg      GenConfig
		edits    []Edit
		wantSum  string
		haveSeed bool
	)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func() error {
			return fmt.Errorf("fuzzer: %s: malformed line %q", path, line)
		}
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return nil, bad()
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
			if err != nil {
				return nil, bad()
			}
			seed, haveSeed = v, true
		case "frags", "outer":
			if len(fields) != 2 {
				return nil, bad()
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, bad()
			}
			if fields[0] == "frags" {
				cfg.Frags = v
			} else {
				cfg.Outer = v
			}
		case "gates":
			if len(fields) != 2 {
				return nil, bad()
			}
			for _, g := range strings.Split(fields[1], ",") {
				switch g {
				case "nosmc":
					cfg.NoSMC = true
				case "noirq":
					cfg.NoIRQ = true
				case "nommio":
					cfg.NoMMIO = true
				case "nofault":
					cfg.NoFault = true
				default:
					return nil, bad()
				}
			}
		case "edit":
			if len(fields) != 3 {
				return nil, bad()
			}
			fr, err1 := strconv.Atoi(fields[1])
			in, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, bad()
			}
			edits = append(edits, Edit{Frag: fr, Insn: in})
		case "sha256":
			if len(fields) != 2 {
				return nil, bad()
			}
			wantSum = fields[1]
		default:
			return nil, bad()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveSeed {
		return nil, fmt.Errorf("fuzzer: %s: no seed line", path)
	}
	p, err := Build(seed, cfg, edits)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: %s: %w", path, err)
	}
	if wantSum != "" {
		sum := sha256.Sum256(p.Image)
		if hex.EncodeToString(sum[:]) != wantSum {
			return nil, fmt.Errorf("fuzzer: %s: regenerated image hash mismatch (stale reproducer?)", path)
		}
	}
	return p, nil
}
