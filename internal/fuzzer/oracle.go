package fuzzer

import (
	"fmt"
	"strings"

	"cms/internal/cms"
	"cms/internal/tcache"
)

// The differential oracle runs one generated program through every
// execution configuration of the engine and compares outcomes.
//
// Architectural state — registers, flags, halt/error status, console and
// MMIO output, and the full RAM image — must be byte-identical across ALL
// configurations: that is the paper's correctness contract, and the guest
// has no way to tell which engine ran it.
//
// Metrics are compared within equivalence classes, matching the contracts
// the engine actually makes:
//
//   - sync class {xlate, compiled, risc, sharedA, sharedB}: the compiled
//     backend, the risc register-IR backend, and the shared store are pure
//     wall-clock optimizations, so the full Metrics struct and cache
//     statistics are identical.
//   - pipelined class {pipe1, pipe2}: installs happen at deterministic due
//     times independent of worker count, so any worker count >= 1 produces
//     identical Metrics (but different from synchronous translation, which
//     installs immediately).
//   - interp: pure interpretation retires through a different cost model
//     entirely; only its architectural state is compared.
//
// Fault-injected runs perturb Metrics by design, so they participate only
// in the architectural comparison.

// OracleConfig returns the engine configuration the oracle varies. The hot
// threshold is dropped so the generator's 24-trip outer loop pushes every
// fragment through profile → translate → chain quickly.
func OracleConfig() cms.Config {
	c := cms.DefaultConfig()
	c.HotThreshold = 10
	return c
}

// Divergence describes an oracle failure: which two configurations
// disagreed about what.
type Divergence struct {
	Seed   uint64
	Field  string // "arch" or "metrics"
	A, B   string // configuration names
	Detail string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("seed %#x: %s divergence between %s and %s: %s",
		d.Seed, d.Field, d.A, d.B, d.Detail)
}

// CheckOptions tunes one oracle invocation.
type CheckOptions struct {
	// Inject adds fault-injection runs (arch-state comparison only).
	Inject bool
	// Mutate, when non-nil, is applied to every captured State before
	// comparison. It exists so tests can plant a synthetic semantics bug
	// and prove the oracle catches it and the shrinker reduces it; it has
	// no production use.
	Mutate func(st *State)
}

// CheckProgram runs p through the full configuration matrix and returns the
// first divergence, or nil if every comparison passed.
//
// Runs that exhaust the instruction budget return no verdict (nil): budget
// exhaustion is checked at dispatch boundaries, which fall at different
// retirement counts per configuration, so final states are incomparable.
// Pristine generated programs always halt well inside the budget (the
// generator tests assert this); only degenerate shrink candidates get here.
func CheckProgram(p *Program, opts CheckOptions) *Divergence {
	base := OracleConfig()

	run := func(name string, mod func(*cms.Config), sched *Schedule) *State {
		cfg := base
		if mod != nil {
			mod(&cfg)
		}
		st := RunProgram(p, name, cfg, sched)
		if opts.Mutate != nil {
			opts.Mutate(st)
		}
		return st
	}

	interp := run("interp", func(c *cms.Config) { c.NoTranslate = true }, nil)
	xlate := run("xlate", func(c *cms.Config) { c.EnableCompiledBackend = false }, nil)
	compiled := run("compiled", nil, nil)
	// Ninth leg: the risc register-IR backend with lazy EFLAGS
	// materialization. Structurally the furthest configuration from the
	// interpreter, held to the same contract on both axes.
	riscBackend := func(c *cms.Config) { c.Backend = "risc" }
	riscRun := run("risc", riscBackend, nil)
	pipe1 := run("pipe1", func(c *cms.Config) { c.PipelineWorkers = 1 }, nil)
	pipe2 := run("pipe2", func(c *cms.Config) { c.PipelineWorkers = 2 }, nil)
	// A forced-wide shard array: on small hosts NewShared would collapse to
	// one shard, and the shared runs must prove cross-shard routing is as
	// invisible as the store itself.
	store := tcache.NewSharedShards(0, 4)
	shared := func(c *cms.Config) { c.SharedStore = store }
	sharedA := run("sharedA", shared, nil)
	sharedB := run("sharedB", shared, nil)

	all := []*State{interp, xlate, compiled, riscRun, pipe1, pipe2, sharedA, sharedB}
	var injXlate, snapInj *State
	if opts.Inject {
		injXlate = run("inj-xlate", func(c *cms.Config) { c.EnableCompiledBackend = false }, NewSchedule(p.Seed))
		all = append(all,
			injXlate,
			run("inj-compiled", nil, NewSchedule(p.Seed^0xA5A5)),
			// Injected rollbacks through the risc executor: every fault
			// class must discard its lazy flag images with the rest of the
			// speculative state.
			run("inj-risc", riscBackend, NewSchedule(p.Seed^0x5A5A)),
			// Injected evictions against the warm sharded store: forced
			// invalidations make the VM re-request regions the store still
			// holds, so the hit path runs mid-schedule and must stay
			// architecturally invisible.
			run("inj-shared", shared, NewSchedule(p.Seed^0x3C3C)),
		)
	}

	// Checkpoint/restore legs (see snapleg.go): run to a seed-derived commit
	// boundary, snapshot through the full encode/decode envelope, restore
	// into a fresh engine, and finish there. The combined run joins both the
	// architectural comparison and its configuration's metrics class —
	// snapshotting must be invisible on every axis.
	total := compiled.Metrics.GuestTotal()
	snapLeg := func(name string, mod func(*cms.Config), salt uint64,
		restoreMod func(*cms.Config), capSched, resSched *Schedule) *State {
		cfg := base
		if mod != nil {
			mod(&cfg)
		}
		st := runSnapshotted(p, name, cfg, snapTarget(total, p.Seed^salt), restoreMod, capSched, resSched)
		if opts.Mutate != nil {
			opts.Mutate(st)
		}
		return st
	}
	snapCompiled := snapLeg("snap-compiled", nil, 0, nil, nil, nil)
	// Warm store: both halves share the store the earlier shared legs
	// populated, so rehydration is pure content lookup.
	snapWarm := snapLeg("snap-shared-warm", shared, 1, nil, nil, nil)
	// Cold store: the restore half gets an empty store, so every cached
	// translation is deterministically re-translated at rehydration.
	snapCold := snapLeg("snap-shared-cold", shared, 2,
		func(c *cms.Config) { c.SharedStore = tcache.NewSharedShards(0, 4) }, nil, nil)
	snapPipe := snapLeg("snap-pipe", func(c *cms.Config) { c.PipelineWorkers = 1 }, 3, nil, nil, nil)
	// Random-boundary snapshot under the risc backend, against the store
	// the vliw shared legs already warmed: the capture half populates
	// risc-tagged keys beside the vliw-tagged ones, and the restore half
	// must rehydrate strictly from its own backend's entries — the
	// content keys keep the backends apart in a mixed store.
	snapRisc := snapLeg("snap-risc", func(c *cms.Config) { shared(c); riscBackend(c) }, 5, nil, nil, nil)
	all = append(all, snapCompiled, snapWarm, snapCold, snapPipe, snapRisc)
	if opts.Inject {
		// Fault injection across a checkpoint: the schedule state rides the
		// snapshot, so the restored run's injections continue exactly where
		// the captured run's stopped.
		snapInj = snapLeg("snap-inj", func(c *cms.Config) { c.EnableCompiledBackend = false }, 4,
			nil, NewSchedule(p.Seed), NewSchedule(p.Seed))
		all = append(all, snapInj)
	}

	for _, st := range all {
		if strings.Contains(st.Err, "budget exhausted") {
			return nil
		}
	}

	for _, st := range all[1:] {
		if d := DiffArch(interp, st); d != "" {
			return &Divergence{Seed: p.Seed, Field: "arch", A: interp.Name, B: st.Name, Detail: d}
		}
	}
	for _, st := range []*State{compiled, riscRun, sharedA, sharedB, snapCompiled, snapWarm, snapCold, snapRisc} {
		if d := DiffMetrics(xlate, st); d != "" {
			return &Divergence{Seed: p.Seed, Field: "metrics", A: xlate.Name, B: st.Name, Detail: d}
		}
	}
	for _, st := range []*State{pipe2, snapPipe} {
		if d := DiffMetrics(pipe1, st); d != "" {
			return &Divergence{Seed: p.Seed, Field: "metrics", A: pipe1.Name, B: st.Name, Detail: d}
		}
	}
	if opts.Inject {
		if d := DiffMetrics(injXlate, snapInj); d != "" {
			return &Divergence{Seed: p.Seed, Field: "metrics", A: injXlate.Name, B: snapInj.Name, Detail: d}
		}
	}
	return nil
}

// CheckSeed generates the program for seed and runs the oracle on it.
func CheckSeed(seed uint64, cfg GenConfig, opts CheckOptions) (*Program, *Divergence) {
	p, err := Build(seed, cfg, nil)
	if err != nil {
		// Pristine generation can never produce an invalid program; a link
		// failure is a generator bug and must surface loudly.
		panic(err)
	}
	return p, CheckProgram(p, opts)
}
