package fuzzer

import (
	"strings"
	"testing"
)

// hasSMC reports whether the program carries a self-modifying fragment.
func hasSMC(p *Program) bool {
	for _, f := range p.frags {
		if strings.HasPrefix(f.kind, "smc") {
			return true
		}
	}
	return false
}

// TestSnapshotBoundarySweep checkpoints generated programs at a dense grid
// of commit boundaries and requires every restored continuation to match
// the uninterrupted run bit-for-bit — architectural state and Metrics.
//
// The seeds are chosen so at least one program carries self-modifying code:
// a grid this dense necessarily lands checkpoints immediately before SMC
// writes, which is the regression this test exists for — a restore that
// mishandled page generations, fine-grain masks, the decoded-instruction
// cache, or the indirect-target caches would execute a stale translation
// (or miss a protection hit) right after the seam and diverge. Runs under
// -race in CI like every other test here.
func TestSnapshotBoundarySweep(t *testing.T) {
	base := OracleConfig()
	seeds := []uint64{3, 7, 17, 91, 123}
	if testing.Short() {
		seeds = seeds[:2]
	}
	smcSeen := false
	for _, seed := range seeds {
		p := MustBuild(seed, GenConfig{})
		smcSeen = smcSeen || hasSMC(p)
		baseline := RunProgram(p, "base", base, nil)
		if strings.Contains(baseline.Err, "budget exhausted") {
			t.Fatalf("seed %d: baseline exhausted budget", seed)
		}
		total := baseline.Metrics.GuestTotal()
		step := total/48 + 1
		for target := step; target < total; target += step {
			st := runSnapshotted(p, "snap", base, target, nil, nil, nil)
			if d := DiffArch(baseline, st); d != "" {
				t.Fatalf("seed %d target %d: arch: %s", seed, target, d)
			}
			if d := DiffMetrics(baseline, st); d != "" {
				t.Fatalf("seed %d target %d: metrics: %s", seed, target, d)
			}
		}
	}
	if !smcSeen {
		t.Fatal("no sweep seed generated an SMC fragment; pick different seeds")
	}
}

// TestSnapshotUnderInjectionSweep repeats a (coarser) boundary sweep with a
// fault-injection schedule armed across the checkpoint: forced rollbacks,
// alias faults, evictions, and protection hits continue on the restored
// engine exactly where the captured run left off.
func TestSnapshotUnderInjectionSweep(t *testing.T) {
	base := OracleConfig()
	base.EnableCompiledBackend = false
	seeds := []uint64{5, 29, 64}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		p := MustBuild(seed, GenConfig{})
		baseline := RunProgram(p, "base", base, NewSchedule(seed))
		if strings.Contains(baseline.Err, "budget exhausted") {
			t.Fatalf("seed %d: baseline exhausted budget", seed)
		}
		total := baseline.Metrics.GuestTotal()
		step := total/12 + 1
		for target := step; target < total; target += step {
			st := runSnapshotted(p, "snap-inj", base, target, nil, NewSchedule(seed), NewSchedule(seed))
			if d := DiffArch(baseline, st); d != "" {
				t.Fatalf("seed %d target %d: arch: %s", seed, target, d)
			}
			if d := DiffMetrics(baseline, st); d != "" {
				t.Fatalf("seed %d target %d: metrics: %s", seed, target, d)
			}
		}
	}
}
