package fuzzer

import (
	"bytes"
	"strings"
	"testing"

	"cms/internal/guest"
)

// TestGenerateDeterministic: same seed, same image, bit for bit.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := MustBuild(seed, GenConfig{})
		b := MustBuild(seed, GenConfig{})
		if !bytes.Equal(a.Image, b.Image) {
			t.Fatalf("seed %d: regeneration differs", seed)
		}
		if a.Entry != b.Entry || a.BodyInsns != b.BodyInsns {
			t.Fatalf("seed %d: metadata differs", seed)
		}
	}
}

// TestGenerateDecodes: every code byte range of a generated image decodes,
// and the listing renderer never hits an undecodable instruction.
func TestGenerateDecodes(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		p := MustBuild(seed, GenConfig{})
		for _, line := range p.Disasm() {
			if strings.Contains(line, "undecodable") {
				t.Fatalf("seed %d: %s", seed, line)
			}
		}
	}
}

// TestGeneratedProgramsHalt: pristine programs reach the epilogue's clean
// HLT under pure interpretation, well inside the budget, with the console
// carrying the epilogue marker.
func TestGeneratedProgramsHalt(t *testing.T) {
	cfg := OracleConfig()
	cfg.NoTranslate = true
	for seed := uint64(1); seed <= 50; seed++ {
		p := MustBuild(seed, GenConfig{})
		st := RunProgram(p, "interp", cfg, nil)
		if st.Err != "" {
			t.Fatalf("seed %d: %s", seed, st.Err)
		}
		if !st.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
		if !strings.HasSuffix(st.Console, "K") {
			t.Fatalf("seed %d: epilogue marker missing (console %q)", seed, st.Console)
		}
	}
}

// TestGeneratedProgramsTranslate: under the oracle config the engine
// actually installs translations for generated programs — the whole point
// of the exercise.
func TestGeneratedProgramsTranslate(t *testing.T) {
	p := MustBuild(3, GenConfig{})
	st := RunProgram(p, "compiled", OracleConfig(), nil)
	if st.Err != "" {
		t.Fatalf("%s", st.Err)
	}
	if st.Metrics.Translations == 0 {
		t.Fatalf("no translations installed")
	}
	if st.Metrics.GuestTexec == 0 {
		t.Fatalf("no instructions retired in translations")
	}
}

// TestBuildEditValidation: edits that would break structure are rejected.
func TestBuildEditValidation(t *testing.T) {
	p := MustBuild(1, GenConfig{})
	// Fragment 0 is the IVT (scaffolding).
	if _, err := Build(p.Seed, p.Cfg, []Edit{{Frag: 0, Insn: -1}}); err == nil {
		t.Fatal("removing the IVT was allowed")
	}
	if _, err := Build(p.Seed, p.Cfg, []Edit{{Frag: 10_000, Insn: -1}}); err == nil {
		t.Fatal("out-of-range fragment was allowed")
	}
}

// TestFeatureGates: gated generations contain none of the gated artifacts.
func TestFeatureGates(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := MustBuild(seed, GenConfig{NoSMC: true, NoIRQ: true, NoMMIO: true, NoFault: true})
		for _, f := range p.frags {
			switch f.kind {
			case "smc-stylized", "smc-hostile", "irq-phase", "mmio", "div", "softint":
				t.Fatalf("seed %d: gated fragment kind %q generated", seed, f.kind)
			}
		}
		for _, f := range p.frags {
			for _, s := range f.body {
				if s.in.Op == guest.OpSTI || s.in.Op == guest.OpINT ||
					s.in.Op == guest.OpDIV || s.in.Op == guest.OpIDIV {
					t.Fatalf("seed %d: gated op %v in %s", seed, s.in.Op, f.label)
				}
			}
		}
	}
}
