package fuzzer

import (
	"cms/internal/dev"
	"cms/internal/guest"
)

// Program memory map. Everything lives in the first megabyte: the IVT and
// generated code sit at the bottom, the stack and data cells well away from
// any code page (so only deliberate SMC fragments ever write code pages),
// and the scratch region is where every random memory access is confined by
// address masking.
const (
	progOrg   = guest.IVTBase // image starts at the IVT
	progRAM   = 1 << 20
	stackTop  = 0x60000
	cellBase  = 0x70000 // loop counters and generator bookkeeping cells
	cellOuter = cellBase + 0
	cellTick  = cellBase + 4
	cellInt   = cellBase + 8
	cellFree  = cellBase + 0x20 // first dynamically allocated cell
	scratch   = 0x80000         // masked random loads/stores land here

	// tickCap saturates the timer handler: every configuration observes
	// exactly tickCap memory-visible ticks, however many interrupts are
	// actually delivered (delivery boundaries legitimately differ between
	// the interpreter and region-lumped translated execution).
	tickCap = 3

	// scrubLo..stackTop is the interrupt residue window: asynchronous
	// deliveries push Flags/EIP (and the handler one register) below the
	// stack top, at instants that differ across configurations. The
	// epilogue zeroes the window so final memory images compare equal.
	scrubLo = stackTop - 16

	defaultBudget = 2_000_000
)

// pool is the set of registers random code may clobber. ESP is excluded:
// only generated scaffolding (push/pop pairs, calls, interrupt delivery)
// moves the stack pointer, which keeps every asynchronous delivery inside
// the scrub window.
var pool = [...]guest.Reg{guest.EAX, guest.ECX, guest.EDX, guest.EBX, guest.EBP, guest.ESI, guest.EDI}

// GenConfig shapes generation. The zero value is normalized from the seed.
type GenConfig struct {
	// Frags is the number of random body fragments (0 = 5..10 from seed).
	Frags int
	// Outer is the outer-loop trip count wrapping the whole body; high
	// enough that every fragment crosses the oracle's translation threshold
	// (0 = 24).
	Outer int
	// Feature gates, mostly for debugging generator regressions.
	NoSMC, NoIRQ, NoMMIO, NoFault bool
}

func (c GenConfig) normalized(seed uint64) GenConfig {
	if c.Frags == 0 {
		r := rng{s: seed ^ 0x9E3779B97F4A7C15}
		c.Frags = 5 + r.n(6)
	}
	if c.Outer == 0 {
		c.Outer = 24
	}
	return c
}

// rng is the deterministic generator PRNG (the same LCG family the workload
// suite uses; fixed here forever so seeds reproduce across versions).
type rng struct{ s uint64 }

func (r *rng) next() uint32 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return uint32(r.s >> 32)
}

func (r *rng) n(k int) int { return int(r.next() % uint32(k)) }

func (r *rng) oneIn(k int) bool { return r.n(k) == 0 }

// gen carries generator state while fragments are built.
type gen struct {
	r     rng
	cfg   GenConfig
	frags []*frag // main-line order
	subs  []*frag // call targets, emitted after the epilogue
	cell  uint32  // next free bookkeeping cell
	seq   int     // fragment label counter
}

func (g *gen) reg() guest.Reg { return pool[g.r.n(len(pool))] }

// regNot picks a pool register different from every argument.
func (g *gen) regNot(not ...guest.Reg) guest.Reg {
	for {
		r := g.reg()
		ok := true
		for _, x := range not {
			if r == x {
				ok = false
			}
		}
		if ok {
			return r
		}
	}
}

func (g *gen) allocCell() uint32 {
	a := g.cell
	g.cell += 4
	return a
}

func (g *gen) scratchSlot() uint32 { return scratch + uint32(g.r.n(0x1000))&^3 }

// --- symbolic instruction constructors --------------------------------------

func abs(disp uint32) guest.MemOperand { return guest.MemOperand{Disp: disp} }

func based(b guest.Reg, disp uint32) guest.MemOperand {
	return guest.MemOperand{HasBase: true, Base: b, Disp: disp}
}

func indexed(b, i guest.Reg, scale uint8, disp uint32) guest.MemOperand {
	return guest.MemOperand{HasBase: true, Base: b, HasIndex: true, Index: i, ScaleLog: scale, Disp: disp}
}

func op0(op guest.Op) ins              { return ins{in: guest.Insn{Op: op}} }
func opR(op guest.Op, d guest.Reg) ins { return ins{in: guest.Insn{Op: op, Dst: d}} }
func opRR(op guest.Op, d, s guest.Reg) ins {
	return ins{in: guest.Insn{Op: op, Dst: d, Src: s}}
}
func opRI(op guest.Op, d guest.Reg, imm uint32) ins {
	return ins{in: guest.Insn{Op: op, Dst: d, Imm: imm}}
}
func opRM(op guest.Op, d guest.Reg, m guest.MemOperand) ins {
	return ins{in: guest.Insn{Op: op, Dst: d, Mem: m}}
}
func opMR(op guest.Op, m guest.MemOperand, s guest.Reg) ins {
	return ins{in: guest.Insn{Op: op, Mem: m, Src: s}}
}
func opMI(m guest.MemOperand, imm uint32) ins {
	return ins{in: guest.Insn{Op: guest.OpMOVmi, Mem: m, Imm: imm}}
}
func opRel(op guest.Op, label string) ins {
	return ins{in: guest.Insn{Op: op}, kind: refRel, ref: label}
}
func jcc(c guest.Cond, label string) ins {
	return ins{in: guest.Insn{Op: guest.OpJccBase + guest.Op(c)}, kind: refRel, ref: label}
}
func opOut(port uint16, s guest.Reg) ins {
	return ins{in: guest.Insn{Op: guest.OpOUT, Imm: uint32(port), Src: s}}
}
func opIn(d guest.Reg, port uint16) ins {
	return ins{in: guest.Insn{Op: guest.OpIN, Dst: d, Imm: uint32(port)}}
}

func core(i ins) ins { i.core = true; return i }

func labeled(i ins, l string) ins { i.label = l; return i }

// --- fixed scaffolding ------------------------------------------------------

// ivtFrag builds the interrupt vector table as a data fragment. Exception
// vectors the generator can trip resolve to handlers; the remaining #UD/#PF
// class vectors go to a clean halt so that even degenerate shrink candidates
// terminate deterministically instead of erroring through IVT entry 0.
func ivtFrag() *frag {
	f := &frag{label: "ivt", kind: "ivt", keep: true, data: make([]byte, guest.NumVectors*4)}
	vec := func(v int, label string) {
		f.drefs = append(f.drefs, dataRef{off: uint32(v) * 4, label: label})
	}
	vec(guest.VecDE, "h_de")
	vec(guest.VecUD, "h_halt")
	vec(guest.VecNP, "h_halt")
	vec(guest.VecGP, "h_halt")
	vec(guest.VecPF, "h_halt")
	vec(guest.VecIRQBase+dev.IRQTimer, "h_timer")
	vec(guest.VecIRQBase+dev.IRQDisk, "h_nop")
	vec(guest.VecIRQBase+dev.IRQBlt, "h_nop")
	vec(48, "h_int")
	return f
}

// handlerFrags builds the interrupt/exception handlers. All are transparent:
// registers are preserved and IRET restores the pushed flags image, so a
// delivery's only memory trace is inside the scrub window (plus the
// deliberate tick/int cells).
func handlerFrags() []*frag {
	eax := guest.EAX
	ret := based(guest.ESP, 4) // return EIP slot after one push
	de := &frag{label: "h_de", kind: "handler", keep: true, body: []ins{
		core(opR(guest.OpPUSHr, eax)),
		core(opRM(guest.OpMOVrm, eax, ret)),
		core(opRI(guest.OpADDri, eax, 2)), // skip the 2-byte DIV/IDIV
		core(opMR(guest.OpMOVmr, ret, eax)),
		core(opR(guest.OpPOPr, eax)),
		core(op0(guest.OpIRET)),
	}}
	halt := &frag{label: "h_halt", kind: "handler", keep: true, body: []ins{
		core(op0(guest.OpHLT)),
	}}
	timer := &frag{label: "h_timer", kind: "handler", keep: true, body: []ins{
		core(opR(guest.OpPUSHr, eax)),
		core(opRM(guest.OpMOVrm, eax, abs(cellTick))),
		core(opRI(guest.OpCMPri, eax, tickCap)),
		core(jcc(guest.CondGE, "h_timer$sat")),
		core(opR(guest.OpINC, eax)),
		core(opMR(guest.OpMOVmr, abs(cellTick), eax)),
		core(labeled(opR(guest.OpPOPr, eax), "h_timer$sat")),
		core(op0(guest.OpIRET)),
	}}
	softint := &frag{label: "h_int", kind: "handler", keep: true, body: []ins{
		core(opR(guest.OpPUSHr, eax)),
		core(opRM(guest.OpMOVrm, eax, abs(cellInt))),
		core(opR(guest.OpINC, eax)),
		core(opMR(guest.OpMOVmr, abs(cellInt), eax)),
		core(opR(guest.OpPOPr, eax)),
		core(op0(guest.OpIRET)),
	}}
	nop := &frag{label: "h_nop", kind: "handler", keep: true, body: []ins{
		core(op0(guest.OpIRET)),
	}}
	return []*frag{de, halt, timer, softint, nop}
}

func (g *gen) entryFrag() *frag {
	f := &frag{label: "entry", kind: "entry", keep: true}
	f.body = append(f.body,
		core(op0(guest.OpCLI)),
		core(opRI(guest.OpMOVri, guest.ESP, stackTop)),
		core(opMI(abs(cellOuter), uint32(g.cfg.Outer))),
		core(opMI(abs(cellTick), 0)),
		core(opMI(abs(cellInt), 0)),
	)
	for i := 0; i < 4; i++ {
		f.body = append(f.body, core(opMI(abs(scratch+uint32(16*i)), g.r.next())))
	}
	for _, r := range pool {
		f.body = append(f.body, core(opRI(guest.OpMOVri, r, g.r.next())))
	}
	return f
}

func outerTailFrag() *frag {
	eax := guest.EAX
	return &frag{label: "outertail", kind: "outer", keep: true, body: []ins{
		core(opRM(guest.OpMOVrm, eax, abs(cellOuter))),
		core(opR(guest.OpDEC, eax)),
		core(opMR(guest.OpMOVmr, abs(cellOuter), eax)),
		core(jcc(guest.CondNE, "outerhead")),
	}}
}

func epilogueFrag() *frag {
	eax := guest.EAX
	f := &frag{label: "epilogue", kind: "epilogue", keep: true}
	for a := uint32(scrubLo); a < stackTop; a += 4 {
		f.body = append(f.body, core(opMI(abs(a), 0)))
	}
	f.body = append(f.body,
		core(opRI(guest.OpMOVri, eax, 'K')),
		core(opOut(dev.ConsoleDataPort, eax)),
		core(op0(guest.OpHLT)),
	)
	return f
}

// --- random body fragments --------------------------------------------------

func (g *gen) newFrag(kind string) *frag {
	f := &frag{label: fragLabel(g.seq), kind: kind}
	g.seq++
	return f
}

func fragLabel(i int) string { return "f" + itoa(i) }

// itoa avoids fmt on the generator's hot path (and keeps output stable).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

var maskChoices = [...]uint32{0xFFF, 0x3FC, 0xFC, 0x3F, 0x7}

// aluIns emits one random register-only ALU instruction.
func (g *gen) aluIns() ins {
	d, s := g.reg(), g.reg()
	switch g.r.n(12) {
	case 0:
		return opRR([]guest.Op{guest.OpADDrr, guest.OpSUBrr, guest.OpANDrr, guest.OpORrr, guest.OpXORrr}[g.r.n(5)], d, s)
	case 1:
		return opRI([]guest.Op{guest.OpADDri, guest.OpSUBri, guest.OpANDri, guest.OpORri, guest.OpXORri}[g.r.n(5)], d, g.r.next())
	case 2:
		return opRR([]guest.Op{guest.OpADCrr, guest.OpSBBrr}[g.r.n(2)], d, s)
	case 3:
		return opRI([]guest.Op{guest.OpADCri, guest.OpSBBri}[g.r.n(2)], d, g.r.next())
	case 4:
		return opRR([]guest.Op{guest.OpCMPrr, guest.OpTESTrr}[g.r.n(2)], d, s)
	case 5:
		return opR([]guest.Op{guest.OpINC, guest.OpDEC, guest.OpNEG, guest.OpNOT}[g.r.n(4)], d)
	case 6:
		return opRI([]guest.Op{guest.OpSHLri, guest.OpSHRri, guest.OpSARri}[g.r.n(3)], d, uint32(g.r.n(32)))
	case 7:
		return opR([]guest.Op{guest.OpSHLrc, guest.OpSHRrc, guest.OpSARrc}[g.r.n(3)], d)
	case 8:
		if g.r.oneIn(2) {
			return opRR(guest.OpIMULrr, d, s)
		}
		return opRI(guest.OpIMULri, d, g.r.next())
	case 9:
		if g.r.oneIn(2) {
			return opR(guest.OpMUL, d)
		}
		return op0(guest.OpCDQ)
	case 10:
		return opRR(guest.OpXCHG, d, s)
	default:
		if g.r.oneIn(2) {
			return opRR(guest.OpMOVrr, d, s)
		}
		return opRI(guest.OpMOVri, d, g.r.next())
	}
}

// memIns emits a masked random memory access: the base register is ANDed
// into the scratch window first, so accesses are always valid — and the
// small masks make distinct fragments alias the same lines constantly.
func (g *gen) memIns(out *[]ins) {
	rB := g.reg()
	mask := maskChoices[g.r.n(len(maskChoices))]
	// Mask ANDs are core: dropping one while keeping its access would let
	// the access escape the scratch window and clobber program structure.
	*out = append(*out, core(opRI(guest.OpANDri, rB, mask)))
	m := based(rB, scratch)
	if g.r.oneIn(4) {
		rI := g.regNot(rB)
		*out = append(*out, core(opRI(guest.OpANDri, rI, maskChoices[2+g.r.n(3)])))
		m = indexed(rB, rI, uint8(g.r.n(3)), scratch)
	}
	d := g.reg()
	switch g.r.n(10) {
	case 0:
		*out = append(*out, opRM(guest.OpMOVrm, d, m))
	case 1:
		*out = append(*out, opMR(guest.OpMOVmr, m, d))
	case 2:
		*out = append(*out, opMI(m, g.r.next()))
	case 3:
		*out = append(*out, opRM(guest.OpMOVBrm, d, m))
	case 4:
		*out = append(*out, opMR(guest.OpMOVBmr, m, d))
	case 5:
		*out = append(*out, opRM(guest.OpMOVSXB, d, m))
	case 6:
		base := []guest.Op{guest.OpADDrm, guest.OpSUBrm, guest.OpANDrm, guest.OpORrm, guest.OpXORrm, guest.OpCMPrm}
		*out = append(*out, opRM(base[g.r.n(len(base))], d, m))
	case 7:
		base := []guest.Op{guest.OpADDmr, guest.OpSUBmr, guest.OpANDmr, guest.OpORmr, guest.OpXORmr}
		*out = append(*out, opMR(base[g.r.n(len(base))], m, d))
	case 8:
		*out = append(*out, ins{in: guest.Insn{Op: guest.OpCMPmi, Mem: m, Imm: g.r.next()}})
	default:
		*out = append(*out, opRM(guest.OpLEA, d, m))
	}
}

func (g *gen) aluFrag() *frag {
	f := g.newFrag("alu")
	for i, n := 0, 3+g.r.n(8); i < n; i++ {
		f.body = append(f.body, g.aluIns())
	}
	return f
}

func (g *gen) memFrag() *frag {
	f := g.newFrag("mem")
	for i, n := 0, 2+g.r.n(5); i < n; i++ {
		g.memIns(&f.body)
	}
	return f
}

// pushPopFrag emits a balanced push/pop sequence. PUSHF is matched by POPF
// at the same stack depth, so the interrupt flag (always clear here) is
// restored exactly.
func (g *gen) pushPopFrag() *frag {
	f := g.newFrag("stack")
	depth := 1 + g.r.n(3)
	kinds := make([]int, depth)
	for i := range kinds {
		kinds[i] = g.r.n(3)
		switch kinds[i] {
		case 0:
			f.body = append(f.body, core(opR(guest.OpPUSHr, g.reg())))
		case 1:
			f.body = append(f.body, core(ins{in: guest.Insn{Op: guest.OpPUSHi, Imm: g.r.next()}}))
		default:
			f.body = append(f.body, core(op0(guest.OpPUSHF)))
		}
	}
	for i := 0; i < 1+g.r.n(3); i++ {
		f.body = append(f.body, g.aluIns())
	}
	for i := depth - 1; i >= 0; i-- {
		if kinds[i] == 2 {
			f.body = append(f.body, core(op0(guest.OpPOPF)))
		} else {
			f.body = append(f.body, core(opR(guest.OpPOPr, g.reg())))
		}
	}
	return f
}

func (g *gen) loopFrag() *frag {
	f := g.newFrag("loop")
	cell := g.allocCell()
	rL := g.reg()
	head := f.label + "$head"
	f.body = append(f.body, core(opMI(abs(cell), uint32(2+g.r.n(8)))))
	f.body = append(f.body, core(labeled(op0(guest.OpNOP), head)))
	for i, n := 0, 2+g.r.n(4); i < n; i++ {
		if g.r.oneIn(3) {
			g.memIns(&f.body)
		} else {
			f.body = append(f.body, g.aluIns())
		}
	}
	f.body = append(f.body,
		core(opRM(guest.OpMOVrm, rL, abs(cell))),
		core(opR(guest.OpDEC, rL)),
		core(opMR(guest.OpMOVmr, abs(cell), rL)),
		core(jcc(guest.CondNE, head)),
	)
	return f
}

func (g *gen) callFrag() *frag {
	sub := &frag{label: "s" + itoa(len(g.subs)), kind: "sub"}
	for i, n := 0, 2+g.r.n(4); i < n; i++ {
		if g.r.oneIn(4) {
			g.memIns(&sub.body)
		} else {
			sub.body = append(sub.body, g.aluIns())
		}
	}
	sub.body = append(sub.body, core(op0(guest.OpRET)))
	g.subs = append(g.subs, sub)

	f := g.newFrag("call")
	f.deps = append(f.deps, sub.label)
	if g.r.oneIn(2) {
		f.body = append(f.body, core(opRel(guest.OpCALLrel, sub.label)))
	} else {
		rT := g.reg()
		f.body = append(f.body,
			core(ins{in: guest.Insn{Op: guest.OpMOVri, Dst: rT}, kind: refImm, ref: sub.label}),
			core(opR(guest.OpCALLr, rT)),
		)
	}
	return f
}

func (g *gen) jccFrag() *frag {
	f := g.newFrag("jcc")
	a, b := g.reg(), g.reg()
	if g.r.oneIn(2) {
		f.body = append(f.body, opRR(guest.OpCMPrr, a, b))
	} else {
		f.body = append(f.body, opRR(guest.OpTESTrr, a, b))
	}
	cond := guest.Cond(g.r.n(16))
	f.body = append(f.body, core(jcc(cond, f.end())))
	for i, n := 0, 1+g.r.n(3); i < n; i++ {
		f.body = append(f.body, g.aluIns())
	}
	return f
}

// indJmpFrag jumps to its own end through a register or a memory cell — the
// data-dependent control transfers that exercise indirect dispatch and the
// per-translation indirect target cache.
func (g *gen) indJmpFrag() *frag {
	f := g.newFrag("indjmp")
	rT := g.reg()
	load := core(ins{in: guest.Insn{Op: guest.OpMOVri, Dst: rT}, kind: refImm, ref: f.end()})
	if g.r.oneIn(2) {
		f.body = append(f.body, load, core(opR(guest.OpJMPr, rT)))
	} else {
		cell := g.allocCell()
		f.body = append(f.body,
			load,
			core(opMR(guest.OpMOVmr, abs(cell), rT)),
			core(ins{in: guest.Insn{Op: guest.OpJMPm, Mem: abs(cell)}}),
		)
	}
	return f
}

// divFrag provokes a #DE on roughly half the outer iterations: the divisor
// is masked to {0,1}, and the skip handler resumes past the 2-byte DIV.
func (g *gen) divFrag() *frag {
	f := g.newFrag("div")
	rX := g.regNot(guest.EAX, guest.EDX)
	f.body = append(f.body, core(opRR(guest.OpXORrr, guest.EDX, guest.EDX)))
	if !g.r.oneIn(4) {
		f.body = append(f.body, opRI(guest.OpANDri, rX, 1))
	}
	if g.r.oneIn(2) {
		f.body = append(f.body, core(opR(guest.OpDIV, rX)))
	} else {
		f.body = append(f.body, core(opR(guest.OpIDIV, rX)))
	}
	return f
}

// intFrag delivers a software interrupt through vector 48 — synchronous, so
// its stack residue is identical in every configuration.
func (g *gen) intFrag() *frag {
	f := g.newFrag("softint")
	f.body = append(f.body, core(ins{in: guest.Insn{Op: guest.OpINT, Imm: 48}}))
	return f
}

// smcStylizedFrag rewrites the imm32 field of a MOV on every outer
// iteration, then executes it — the §3.6.4 stylized SMC idiom the translator
// adapts to with immediate loads.
func (g *gen) smcStylizedFrag() *frag {
	f := g.newFrag("smc-stylized")
	site := f.label + "$site"
	pat := g.allocCell()
	rA := g.reg()
	rC := g.regNot(rA)
	f.body = append(f.body,
		core(opRM(guest.OpMOVrm, rA, abs(pat))),
		core(opRI(guest.OpADDri, rA, g.r.next()|1)),
		core(opMR(guest.OpMOVmr, abs(pat), rA)),
		// Patch the imm32 of the MOV below (opcode byte + reg byte = +2).
		core(ins{in: guest.Insn{Op: guest.OpMOVmr, Src: rA}, kind: refDisp, ref: site, add: 2}),
		core(labeled(opRI(guest.OpMOVri, rC, 0x11110000), site)),
		core(opMR(guest.OpMOVmr, abs(g.scratchSlot()), rC)),
	)
	return f
}

// smcHostileFrag flips one executed instruction between ADD and SUB with a
// single byte store on every outer iteration — hostile SMC that keeps
// invalidating the covering translation mid-chain and drives the protection
// and retranslation ladders.
func (g *gen) smcHostileFrag() *frag {
	f := g.newFrag("smc-hostile")
	site := f.label + "$site"
	tog := g.allocCell()
	rT := g.reg()
	rX := g.regNot(rT)
	rY := g.regNot(rT, rX)
	f.body = append(f.body,
		core(opRM(guest.OpMOVrm, rT, abs(tog))),
		core(opRI(guest.OpXORri, rT, 1)),
		core(opMR(guest.OpMOVmr, abs(tog), rT)),
		// opcode = 0x20 + 4*toggle: OpADDrr or OpSUBrr, same length.
		core(opRI(guest.OpSHLri, rT, 2)),
		core(opRI(guest.OpADDri, rT, uint32(guest.OpADDrr))),
		core(ins{in: guest.Insn{Op: guest.OpMOVBmr, Src: rT}, kind: refDisp, ref: site}),
		core(labeled(opRR(guest.OpADDrr, rX, rY), site)),
		core(opMR(guest.OpMOVmr, abs(g.scratchSlot()), rX)),
	)
	return f
}

// mmioFrag touches the console text buffer (MMIO that looks like RAM, §3.4)
// and the console ports (irrevocably ordered I/O).
func (g *gen) mmioFrag() *frag {
	f := g.newFrag("mmio")
	rB := g.reg()
	// 32-bit MMIO accesses must be naturally aligned; mask to a word offset.
	// Core for the same reason as memIns masks.
	f.body = append(f.body, core(opRI(guest.OpANDri, rB, 0xFFC)))
	for i, n := 0, 1+g.r.n(3); i < n; i++ {
		d := g.regNot(rB)
		switch g.r.n(6) {
		case 0:
			f.body = append(f.body, opMR(guest.OpMOVmr, based(rB, dev.ConsoleMMIOBase), d))
		case 1:
			f.body = append(f.body, opRM(guest.OpMOVrm, d, based(rB, dev.ConsoleMMIOBase)))
		case 2:
			f.body = append(f.body, opMR(guest.OpMOVBmr, based(rB, dev.ConsoleMMIOBase+uint32(g.r.n(4))), d))
		case 3:
			f.body = append(f.body, opRM(guest.OpMOVBrm, d, based(rB, dev.ConsoleMMIOBase+uint32(g.r.n(4)))))
		case 4:
			f.body = append(f.body, opOut(dev.ConsoleDataPort, d))
		default:
			f.body = append(f.body, opIn(d, dev.ConsoleStatusPort))
		}
	}
	return f
}

// irqPhaseFrag is the timer-pressure window: interrupts are enabled only
// here, at a known stack depth, with the saturating handler making delivery
// memory-invisible past tickCap. Outside the phase IF stays clear, so
// asynchronous delivery timing — which legitimately differs between
// instruction-granular interpretation and region-granular translated
// execution — can never leak into final state.
func (g *gen) irqPhaseFrag() *frag {
	f := g.newFrag("irq-phase")
	head := f.label + "$spin"
	rP := g.reg()
	rS := g.regNot(rP)
	f.body = append(f.body,
		core(opRI(guest.OpMOVri, rP, uint32(7+g.r.n(9)))),
		core(opOut(dev.TimerPeriodPort, rP)),
		core(op0(guest.OpSTI)),
		core(opRI(guest.OpMOVri, rS, uint32(40+g.r.n(40)))),
		core(labeled(op0(guest.OpNOP), head)),
	)
	for i, n := 0, 1+g.r.n(2); i < n; i++ {
		d := g.regNot(rS)
		f.body = append(f.body, opRR(guest.OpADDrr, d, g.regNot(rS)))
	}
	f.body = append(f.body,
		core(opR(guest.OpDEC, rS)),
		core(jcc(guest.CondNE, head)),
		core(op0(guest.OpCLI)),
		core(opRI(guest.OpMOVri, rP, 0)),
		core(opOut(dev.TimerPeriodPort, rP)),
	)
	return f
}

// generate builds the full fragment list for a seed: fixed scaffolding
// around cfg.Frags random body fragments, subroutines trailing the epilogue.
func generate(seed uint64, cfg GenConfig) []*frag {
	g := &gen{r: rng{s: seed}, cfg: cfg, cell: cellFree}

	var body []*frag
	irqAt := -1
	if !cfg.NoIRQ {
		irqAt = g.r.n(cfg.Frags)
	}
	for i := 0; i < cfg.Frags; i++ {
		if i == irqAt {
			body = append(body, g.irqPhaseFrag())
			continue
		}
		var f *frag
		for f == nil {
			switch g.r.n(11) {
			case 0, 1:
				f = g.aluFrag()
			case 2, 3:
				f = g.memFrag()
			case 4:
				f = g.pushPopFrag()
			case 5:
				f = g.loopFrag()
			case 6:
				f = g.callFrag()
			case 7:
				f = g.jccFrag()
			case 8:
				f = g.indJmpFrag()
			case 9:
				switch {
				case !cfg.NoSMC && g.r.oneIn(2):
					f = g.smcStylizedFrag()
				case !cfg.NoSMC:
					f = g.smcHostileFrag()
				}
			default:
				switch {
				case !cfg.NoMMIO && g.r.oneIn(2):
					f = g.mmioFrag()
				case !cfg.NoFault && g.r.oneIn(2):
					f = g.divFrag()
				case !cfg.NoFault:
					f = g.intFrag()
				}
			}
		}
		body = append(body, f)
	}

	frags := []*frag{ivtFrag()}
	frags = append(frags, handlerFrags()...)
	frags = append(frags, g.entryFrag())
	frags = append(frags, &frag{label: "outerhead", kind: "outer", keep: true})
	frags = append(frags, body...)
	frags = append(frags, outerTailFrag(), epilogueFrag())
	frags = append(frags, g.subs...)
	return frags
}
